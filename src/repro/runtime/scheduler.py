"""Schedulers: interleaving policies for the shared-memory runtime.

A schedule is a sequence of *actions*: ``StepAction(pid)`` executes one
atomic operation of process ``pid``; ``CrashAction(pid)`` crashes it.  The
asynchronous adversary of the model corresponds to an arbitrary scheduler;
the library provides:

* :class:`RoundRobinScheduler` — fair deterministic baseline;
* :class:`RandomScheduler` — seeded uniform choice, with optional crash
  probability (bounded by a crash budget);
* :class:`FixedScheduler` — replays an explicit action sequence (used by the
  exhaustive explorer and by regression tests that pin adversarial
  interleavings);
* :class:`SoloScheduler` — runs processes to completion one at a time in a
  given order (the "p runs alone" executions of Theorem 3's proof).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulingError


@dataclass(frozen=True, slots=True)
class StepAction:
    """Execute one atomic operation of process ``pid``."""

    pid: int


@dataclass(frozen=True, slots=True)
class CrashAction:
    """Crash process ``pid`` (it takes no further steps)."""

    pid: int


Action = StepAction | CrashAction


class Scheduler(ABC):
    """Chooses the next action given the set of runnable process ids."""

    @abstractmethod
    def next_action(self, runnable: Sequence[int], step_index: int) -> Action:
        """Pick an action; ``runnable`` is never empty."""


class RoundRobinScheduler(Scheduler):
    """Cycle through runnable processes in pid order."""

    def __init__(self) -> None:
        self._last = -1

    def next_action(self, runnable: Sequence[int], step_index: int) -> Action:
        candidates = sorted(runnable)
        for pid in candidates:
            if pid > self._last:
                self._last = pid
                return StepAction(pid)
        self._last = candidates[0]
        return StepAction(candidates[0])


class RandomScheduler(Scheduler):
    """Uniform random choice with an optional crash adversary.

    Args:
        seed: RNG seed; identical seeds reproduce identical schedules.
        crash_probability: Per-decision probability of crashing a runnable
            process instead of stepping one.
        crash_budget: Maximum number of crashes (``f``); in an ``n``-process
            wait-free setting any ``f < n`` is admissible.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_probability: float = 0.0,
        crash_budget: int = 0,
    ) -> None:
        if not 0.0 <= crash_probability <= 1.0:
            raise SchedulingError("crash probability must lie in [0, 1]")
        self._rng = random.Random(seed)
        self.crash_probability = crash_probability
        self.crash_budget = crash_budget
        self._crashes = 0

    def next_action(self, runnable: Sequence[int], step_index: int) -> Action:
        candidates = sorted(runnable)
        can_crash = (
            self._crashes < self.crash_budget
            and len(candidates) > 1  # never crash the last correct process
            and self.crash_probability > 0.0
        )
        if can_crash and self._rng.random() < self.crash_probability:
            self._crashes += 1
            return CrashAction(self._rng.choice(candidates))
        return StepAction(self._rng.choice(candidates))


class FixedScheduler(Scheduler):
    """Replay an explicit action sequence; raises when it runs dry or names a
    non-runnable process."""

    def __init__(self, actions: Sequence[Action | int]) -> None:
        # Bare ints are convenient shorthand for StepAction.
        self._actions = [
            StepAction(a) if isinstance(a, int) else a for a in actions
        ]
        self._index = 0

    def next_action(self, runnable: Sequence[int], step_index: int) -> Action:
        if self._index >= len(self._actions):
            raise SchedulingError("fixed schedule exhausted before completion")
        action = self._actions[self._index]
        self._index += 1
        if action.pid not in runnable:
            raise SchedulingError(
                f"fixed schedule names process {action.pid}, which is not runnable"
            )
        return action

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._actions)


class SoloScheduler(Scheduler):
    """Run each process to completion in the given order."""

    def __init__(self, order: Sequence[int]) -> None:
        self._order = list(order)

    def next_action(self, runnable: Sequence[int], step_index: int) -> Action:
        for pid in self._order:
            if pid in runnable:
                return StepAction(pid)
        return StepAction(sorted(runnable)[0])
