"""Sequential-object formalism: operations, object types, histories,
linearizability (paper §3.1)."""

from repro.spec.history import CompletedCall, History, sequential_history
from repro.spec.linearizability import (
    LinearizabilityResult,
    check_linearizability,
)
from repro.spec.object_type import FALSE, TRUE, SequentialObjectType
from repro.spec.operation import Invocation, Operation, Response, op

__all__ = [
    "CompletedCall",
    "History",
    "sequential_history",
    "LinearizabilityResult",
    "check_linearizability",
    "SequentialObjectType",
    "TRUE",
    "FALSE",
    "Invocation",
    "Operation",
    "Response",
    "op",
]
