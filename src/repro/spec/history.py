"""Concurrent histories.

A *history* is a finite sequence of invocation and response events produced
by a concurrent execution (Herlihy & Wing).  The runtime's executor records
histories; the linearizability checker consumes them.

Events reference objects by name, so one history can span several shared
objects; per-object sub-histories are obtained with :meth:`History.project`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import HistoryError
from repro.spec.operation import Invocation, Operation, Response


@dataclass(frozen=True, slots=True)
class CompletedCall:
    """An invocation matched with its response (one linearizable candidate)."""

    pid: int
    object_name: str
    operation: Operation
    result: Any
    invoke_index: int
    response_index: int

    def overlaps(self, other: "CompletedCall") -> bool:
        """True when the two calls are concurrent (neither precedes the other)."""
        return not (
            self.response_index < other.invoke_index
            or other.response_index < self.invoke_index
        )

    def precedes(self, other: "CompletedCall") -> bool:
        """Real-time precedence: this call returned before the other began."""
        return self.response_index < other.invoke_index


@dataclass
class History:
    """An append-only event log of invocations and responses."""

    events: list[Invocation | Response] = field(default_factory=list)

    def invoke(self, pid: int, object_name: str, operation: Operation) -> None:
        self.events.append(Invocation(pid, object_name, operation))

    def respond(
        self, pid: int, object_name: str, operation: Operation, result: Any
    ) -> None:
        self.events.append(Response(pid, object_name, operation, result))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Invocation | Response]:
        return iter(self.events)

    # ------------------------------------------------------------------

    def project(self, object_name: str) -> "History":
        """Sub-history of events on one object."""
        return History([e for e in self.events if e.object_name == object_name])

    def process_events(self, pid: int) -> list[Invocation | Response]:
        return [e for e in self.events if e.pid == pid]

    def is_well_formed(self) -> bool:
        """Each process alternates invocation/response, starting with an
        invocation, and each response matches the preceding invocation."""
        pending: dict[int, Invocation] = {}
        for event in self.events:
            if isinstance(event, Invocation):
                if event.pid in pending:
                    return False
                pending[event.pid] = event
            else:
                expected = pending.pop(event.pid, None)
                if expected is None:
                    return False
                if (
                    expected.object_name != event.object_name
                    or expected.operation != event.operation
                ):
                    return False
        return True

    def completed_calls(self) -> list[CompletedCall]:
        """Match invocations with responses; pending invocations are dropped.

        Raises:
            HistoryError: If the history is not well formed.
        """
        if not self.is_well_formed():
            raise HistoryError("history is not well formed")
        pending: dict[int, tuple[Invocation, int]] = {}
        calls: list[CompletedCall] = []
        for index, event in enumerate(self.events):
            if isinstance(event, Invocation):
                pending[event.pid] = (event, index)
            else:
                invocation, invoke_index = pending.pop(event.pid)
                calls.append(
                    CompletedCall(
                        pid=event.pid,
                        object_name=event.object_name,
                        operation=event.operation,
                        result=event.result,
                        invoke_index=invoke_index,
                        response_index=index,
                    )
                )
        return calls

    def pending_invocations(self) -> list[Invocation]:
        """Invocations that never received a response (crashed processes)."""
        pending: dict[int, Invocation] = {}
        for event in self.events:
            if isinstance(event, Invocation):
                pending[event.pid] = event
            else:
                pending.pop(event.pid, None)
        return list(pending.values())


def sequential_history(
    calls: list[tuple[int, str, Operation, Any]]
) -> History:
    """Build a (trivially linearizable) sequential history from completed
    calls given as ``(pid, object_name, operation, result)``."""
    history = History()
    for pid, object_name, operation, result in calls:
        history.invoke(pid, object_name, operation)
        history.respond(pid, object_name, operation, result)
    return history
