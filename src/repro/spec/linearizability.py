"""Linearizability checking (Wing & Gong with memoization).

Used to validate that Algorithm 2's emulation of the restricted token object
``T|_{Q_k}`` is (or, for the paper's literal algorithm under an adversarial
schedule, is *not*) linearizable with respect to the sequential ERC20
specification of Definition 3.

The checker performs a DFS over candidate linearization orders: at each step
it tries every *minimal* completed call (one not preceded in real time by
another unlinearized call) whose recorded response matches the sequential
specification's response from the current state.  Visited ``(linearized-set,
state)`` pairs are memoized, which makes the search practical for the history
sizes produced by our differential tests (Lowe's optimization of Wing &
Gong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.spec.history import CompletedCall, History
from repro.spec.object_type import SequentialObjectType


@dataclass
class LinearizabilityResult:
    """Outcome of a linearizability check."""

    is_linearizable: bool
    #: A witness linearization (list of calls in linearized order) when found.
    witness: list[CompletedCall] | None = None
    #: Number of DFS states explored (for diagnostics and benchmarks).
    explored: int = 0


def _minimal_calls(
    remaining: tuple[int, ...], calls: list[CompletedCall]
) -> list[int]:
    """Indices in ``remaining`` that are minimal w.r.t. real-time precedence."""
    minimal: list[int] = []
    for index in remaining:
        candidate = calls[index]
        dominated = False
        for other_index in remaining:
            if other_index == index:
                continue
            if calls[other_index].precedes(candidate):
                dominated = True
                break
        if not dominated:
            minimal.append(index)
    return minimal


def check_linearizability(
    history: History,
    object_type: SequentialObjectType,
    initial_state: Any | None = None,
    max_states: int = 2_000_000,
) -> LinearizabilityResult:
    """Check one object's history against its sequential specification.

    Pending invocations (from crashed processes) are handled by the standard
    completion rule: each pending call may either be dropped or completed with
    whatever response the specification yields at its linearization point.

    Args:
        history: Events for a *single* object (use :meth:`History.project`).
        object_type: Sequential specification to check against.
        initial_state: Starting state; defaults to ``object_type.initial_state()``.
        max_states: DFS budget; exceeded budgets report non-linearizable with
            ``explored == max_states`` (callers should treat this as unknown).
    """
    calls = history.completed_calls()
    pending = history.pending_invocations()
    start_state = (
        object_type.initial_state() if initial_state is None else initial_state
    )

    total = len(calls)
    explored = 0
    # Memo key: (frozenset of linearized completed-call indices,
    #            frozenset of linearized pending-call indices, state).
    seen: set[tuple[frozenset[int], frozenset[int], Any]] = set()

    def dfs(
        remaining: tuple[int, ...],
        pending_remaining: tuple[int, ...],
        state: Any,
        order: list[CompletedCall],
    ) -> list[CompletedCall] | None:
        nonlocal explored
        if explored >= max_states:
            return None
        explored += 1
        if not remaining:
            # Pending calls may always be dropped (their process crashed
            # before the call took effect).
            return list(order)
        key = (frozenset(remaining), frozenset(pending_remaining), state)
        if key in seen:
            return None
        seen.add(key)

        for index in _minimal_calls(remaining, calls):
            call = calls[index]
            successor, response = object_type.apply(
                state, call.pid, call.operation
            )
            if response == call.result:
                order.append(call)
                result = dfs(
                    tuple(i for i in remaining if i != index),
                    pending_remaining,
                    successor,
                    order,
                )
                if result is not None:
                    return result
                order.pop()
        # A pending invocation may be linearized at any point with any
        # response the specification produces.
        for p_index in pending_remaining:
            invocation = pending[p_index]
            successor, _ = object_type.apply(
                state, invocation.pid, invocation.operation
            )
            result = dfs(
                remaining,
                tuple(i for i in pending_remaining if i != p_index),
                successor,
                order,
            )
            if result is not None:
                return result
        return None

    witness = dfs(
        tuple(range(total)), tuple(range(len(pending))), start_state, []
    )
    return LinearizabilityResult(
        is_linearizable=witness is not None,
        witness=witness,
        explored=explored,
    )
