"""Sequential object types: the tuple ``T = (Q, q0, O, R, Δ)``.

The paper (§3.1) defines an object type as a set of states ``Q``, an initial
state ``q0``, operations ``O``, responses ``R``, and a transition relation
``Δ ⊆ Q × Π × O × Q × R``.  All objects analyzed in the paper are
*deterministic*: for every state ``q``, process ``p`` and operation ``o``
there is exactly one valid ``(q', r)``.  We therefore represent ``Δ`` as a
function :meth:`SequentialObjectType.apply`.

States are required to be immutable and hashable.  This buys three things:

* the valency explorer can memoize configurations,
* the linearizability checker can memoize ``(linearized-set, state)`` pairs,
* sequential states can be compared structurally in differential tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, TypeVar

from repro.errors import UnknownOperationError
from repro.spec.operation import Operation

S = TypeVar("S")

#: Conventional boolean responses used throughout the paper's specifications.
TRUE = True
FALSE = False


class SequentialObjectType(ABC, Generic[S]):
    """A deterministic sequential object specification.

    Subclasses implement :meth:`initial_state` (``q0``) and :meth:`apply`
    (``Δ``).  ``apply`` must be a *pure function*: it never mutates its input
    state and always returns a fresh (or shared immutable) state.
    """

    #: Human-readable type name, e.g. ``"erc20"``.
    name: str = "object"

    @abstractmethod
    def initial_state(self) -> S:
        """Return the initial state ``q0``."""

    @abstractmethod
    def apply(self, state: S, pid: int, operation: Operation) -> tuple[S, Any]:
        """Apply ``operation`` invoked by process ``pid`` in ``state``.

        Returns:
            The pair ``(q', r)`` of successor state and response.

        Raises:
            SpecificationError: If the invocation lies outside ``O`` (unknown
                operation name or arguments outside the domain).
        """

    # ------------------------------------------------------------------
    # Derived facilities shared by every object type.
    # ------------------------------------------------------------------

    def operation_names(self) -> tuple[str, ...]:
        """The method names this object supports (for validation/analysis)."""
        return ()

    def validate_name(self, operation: Operation) -> None:
        """Raise :class:`UnknownOperationError` for foreign operations."""
        names = self.operation_names()
        if names and operation.name not in names:
            raise UnknownOperationError(
                f"{self.name} does not support operation {operation.name!r}; "
                f"supported: {', '.join(names)}"
            )

    def footprint(self, pid: int, operation: Operation):
        """Static may-access footprint of the invocation, or ``None``.

        Object types that support the commutativity-aware execution engine
        (:mod:`repro.engine`) return an ``OpFootprint``
        (:mod:`repro.objects.footprint`) describing every state location the
        invocation may observe or write, *independent of the current state*.
        The default ``None`` means "unknown" and makes the engine fall back
        to conservative conflict classification.
        """
        return None

    def is_read_only(self, state: S, pid: int, operation: Operation) -> bool:
        """True when the invocation does not modify the state.

        This is the semantic notion used in Theorem 3's proof ("read-only
        methods"), evaluated *at a particular state*: e.g. a ``transfer`` that
        fails for insufficient balance is equivalent to a read-only operation
        at that state (paper, proof of Theorem 3, Case 1).
        """
        successor, _ = self.apply(state, pid, operation)
        return successor == state

    def run(
        self,
        invocations: Iterable[tuple[int, Operation]],
        state: S | None = None,
    ) -> tuple[S, list[Any]]:
        """Apply a sequence of ``(pid, operation)`` pairs; return final state
        and the list of responses.  Starts from ``q0`` unless ``state`` is
        given."""
        current = self.initial_state() if state is None else state
        responses: list[Any] = []
        for pid, operation in invocations:
            current, response = self.apply(current, pid, operation)
            responses.append(response)
        return current, responses
