"""Operations and operation events.

An :class:`Operation` is an element of the operation set ``O`` of a sequential
object type ``T = (Q, q0, O, R, Δ)`` (paper, §3.1).  Operations are immutable
and hashable so that they can serve as dictionary keys in analysis tools
(commutativity matrices, valency memoization) and appear in recorded
histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Operation:
    """A single operation invocation descriptor.

    Attributes:
        name: The operation's method name, e.g. ``"transfer"``.
        args: Positional arguments, stored as a tuple so the record is
            hashable.
    """

    name: str
    args: tuple[Any, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


def op(name: str, *args: Any) -> Operation:
    """Convenience constructor: ``op("transfer", 1, 5)``."""
    return Operation(name, tuple(args))


@dataclass(frozen=True, slots=True)
class Invocation:
    """A process invoking an operation on a named object."""

    pid: int
    object_name: str
    operation: Operation

    def __str__(self) -> str:
        return f"p{self.pid}: {self.object_name}.{self.operation}"


@dataclass(frozen=True, slots=True)
class Response:
    """The matching response to an :class:`Invocation`."""

    pid: int
    object_name: str
    operation: Operation
    result: Any = field(default=None)

    def __str__(self) -> str:
        return (
            f"p{self.pid}: {self.object_name}.{self.operation} -> {self.result!r}"
        )
