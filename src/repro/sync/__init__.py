"""repro.sync — consensus-number-tiered synchronization lanes.

The paper's central theorems (Thm 2–4) price synchronization *per state*:
an ERC20 token whose largest enabled-spender set has size *k* is exactly a
*k*-consensus object.  This package makes the execution layer pay that
price and no more, per contended conflict-graph component:

* **Tier 0** — owner-only traffic: no messages at all (the engine's and
  cluster's existing fast path; CN = 1);
* **Tier k** — a *team lane*: a k-participant total-order instance scoped
  to the component's spender bound (``O(k²)`` messages), with many
  independent teams running concurrently on one simulator
  (:mod:`repro.net.team_lanes`);
* **Tier ∞** — the existing global lane, now a *fallback* for components
  whose spender set exceeds ``team_threshold`` or cannot be statically
  bounded.

Sizing is sound by construction: team bounds are supersets of the
semantic enabled-spender oracle (:mod:`repro.sync.bounds`, property-tested
in ``tests/sync/``), and *any* tier assignment is serially equivalent —
every lane commits in submission order, so thresholds and team schedules
move the message bill, never the outcome.

Quickstart::

    from repro.engine import BatchExecutor
    from repro.objects.erc20 import ERC20TokenType
    from repro.workloads import APPROVAL_HEAVY_MIX, TokenWorkloadGenerator

    token = ERC20TokenType(32, total_supply=3200)
    engine = BatchExecutor(token, num_lanes=8, team_threshold=4)
    items = TokenWorkloadGenerator(
        32, seed=7, mix=APPROVAL_HEAVY_MIX, spender_pool=4
    ).generate(512)
    state, responses, stats = engine.run_workload(items)
    print(f"{stats.team_ops} ops on team lanes, "
          f"{stats.global_ops} on the global lane, "
          f"k-histogram {stats.k_histogram}")
"""

from repro.sync.bounds import component_team, spender_bound
from repro.sync.escalation import (
    ComponentOrder,
    SyncRoundResult,
    TieredEscalator,
)
from repro.sync.planner import TIER_GLOBAL, SyncAssignment, SyncPlanner

__all__ = [
    "component_team",
    "spender_bound",
    "ComponentOrder",
    "SyncRoundResult",
    "TieredEscalator",
    "TIER_GLOBAL",
    "SyncAssignment",
    "SyncPlanner",
]
