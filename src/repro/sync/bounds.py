"""Spender-set bounds: how large a team a contended component needs.

Tier sizing asks, per contended conflict-graph component, "which processes
could possibly be party to this race?"  The paper answers per account:
the enabled spenders ``σ_q(a)`` (Eq. 10), whose maximum cardinality *is*
the token's consensus number at ``q`` (Theorems 2–4).  The planner needs a
**sound upper bound** — a superset of ``σ_q(a)`` — because an undersized
team could omit an enabled spender and the mini-consensus instance would
no longer be implementable from the token at that state.

Two bounds are known to this module, mirroring the object families of
:mod:`repro.analysis.hierarchy`:

* **ERC20** — :func:`repro.analysis.spenders.potential_spenders`: the
  owner plus every process with a positive allowance, read off the
  allowance registers alone (Algorithm 2's approve-guard view).  It always
  contains ``σ_q(a)`` (the zero-balance convention only ever *shrinks* the
  enabled set), which the property suite machine-checks on random states
  (``tests/sync/test_tier_soundness.py``).
* **asset transfer** — the static owner map ``µ(a)``: a ``k``-shared
  account is a ``k``-consensus object exactly (Guerraoui et al. [16]), and
  ``µ`` never changes, so the bound is exact.

Everything else returns ``None`` — "cannot be statically bounded" — and
the planner falls back to the global lane (Tier ∞), which is always safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.spenders import potential_spenders
from repro.objects.erc20 import TokenState
from repro.objects.footprint import accounts_in

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.mempool import PendingOp


def spender_bound(object_type, state, account: int) -> frozenset[int] | None:
    """A superset of the enabled spenders of ``account``, or ``None`` when
    no sound bound is known for this object family / state shape."""
    if isinstance(state, TokenState):
        if not 0 <= account < state.num_accounts:
            return None
        return potential_spenders(state, account)
    owner_map = getattr(object_type, "owner_map", None)
    if owner_map is not None and 0 <= account < len(owner_map):
        return frozenset(owner_map[account])
    return None


def component_team(
    classifier, ops: "list[PendingOp]", state, object_type
) -> frozenset[int] | None:
    """The synchronization team of one contended component: the union of
    spender bounds over every account the component contends on, plus the
    submitting processes themselves.

    Returns ``None`` — meaning "order this through the global lane" — when
    any footprint is unknown or any contended account lacks a bound.
    """
    team: set[int] = set()
    accounts: set[int] = set()
    for op in ops:
        fp = classifier.footprint(op)
        if fp is None:
            return None
        accounts.update(accounts_in(fp.contended))
        team.add(op.pid)
    for account in sorted(accounts):
        bound = spender_bound(object_type, state, account)
        if bound is None:
            return None
        team.update(bound)
    return frozenset(team)
