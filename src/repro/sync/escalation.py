"""Tiered escalation: route each contended component to its cheapest lane.

:class:`TieredEscalator` is the drop-in replacement for the engine's
unconditional global-escalation call: the :class:`~repro.sync.planner.
SyncPlanner` decides, per contended conflict-graph component, whether a
team lane (a *k*-replica total-order instance from the shared
:class:`~repro.net.team_lanes.TeamLanePool`) suffices or the global lane
must be paid.  All of a round's global-tier operations merge into **one**
submission-ordered batch through the global lane — exactly the historical
behavior — while every team-tier component runs concurrently on the pool;
the round's synchronization phase therefore costs
``max(global lane, slowest team)``, and with the default ``team_threshold
= 0`` the tiered path is bit-identical to always-global escalation.

The serial-equivalence contract is enforced here, not trusted: every
lane must commit its operations in submission order (the deterministic
merge the engine's correctness argument requires), and a violation raises
immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import EngineError
from repro.net.network import LatencyModel, UniformLatency
from repro.net.team_lanes import TeamLanePool
from repro.sync.planner import TIER_GLOBAL, SyncAssignment, SyncPlanner

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.mempool import PendingOp


@dataclass(frozen=True, slots=True)
class ComponentOrder:
    """Outcome of ordering one contended component."""

    tier: float
    team: frozenset[int] | None
    ordered: tuple
    #: Virtual completion within the round's sync phase (when this
    #: component's order is known; trailing quorum traffic may run later).
    completed: float


@dataclass
class SyncRoundResult:
    """Outcome of one round's synchronization phase across all tiers."""

    components: list[ComponentOrder] = field(default_factory=list)
    #: Phase makespan: global lane and team pool run concurrently.
    virtual_time: float = 0.0
    messages: int = 0
    team_messages: int = 0
    global_messages: int = 0
    team_ops: int = 0
    global_ops: int = 0
    #: Distinct team lanes active this round (the concurrency the pool bought).
    teams: int = 0
    #: Team size per team-tier component (the k-distribution's raw data).
    team_sizes: tuple[int, ...] = ()


class TieredEscalator:
    """Consensus-number-tiered ordering for contended components.

    ``global_lane`` is any object with the
    :meth:`~repro.engine.escalation.ConsensusEscalator.order` contract
    (ordered batch, virtual time, message count); the engine and cluster
    pass their existing :class:`~repro.engine.escalation.
    ConsensusEscalator` so the fallback tier is the very lane the paper's
    baseline argument is about.
    """

    def __init__(
        self,
        global_lane,
        planner: SyncPlanner | None = None,
        latency: LatencyModel | None = None,
        seed: int = 0,
        max_batch: int = 64,
        lane_ttl: int | None = None,
    ) -> None:
        self.global_lane = global_lane
        self.planner = planner if planner is not None else SyncPlanner()
        self.pool = TeamLanePool(
            latency=(
                latency if latency is not None else UniformLatency(0.5, 1.5)
            ),
            seed=seed,
            max_batch=max_batch,
            idle_ttl=lane_ttl,
        )
        self.rounds = 0
        self.total_messages = 0
        self.team_messages = 0
        self.global_messages = 0
        #: ``team size -> number of team-tier components`` over the run.
        self.k_histogram: dict[int, int] = {}

    # ------------------------------------------------------------------

    @property
    def team_threshold(self) -> int:
        return self.planner.team_threshold

    def order_round(
        self,
        components: Sequence["Sequence[PendingOp]"],
        classifier,
        state=None,
        object_type=None,
    ) -> SyncRoundResult:
        """Plan and order one round's contended components (engine path).

        With the planner's ``split_sync`` on, each component is first
        partitioned into its per-account synchronization groups — every
        group ordered on its own (smaller) lane, all of them concurrent —
        and the sub-orders are folded back into **one**
        :class:`ComponentOrder` per input component, so callers keep
        zipping ``components`` against the result positionally.  Folding
        is sound because every lane commits in submission order and
        groups race on disjoint accounts: the merged submission order
        *is* each lane's order interleaved, and the cross-group order is
        stitched through chain order by the component's own scheduling.
        """
        grouped = self.planner.assign_groups(
            components, classifier, state=state, object_type=object_type
        )
        flat = [assignment for group in grouped for assignment in group]
        result = self.order_assignments(flat)
        if len(flat) == len(grouped):
            return result
        folded: list[ComponentOrder] = []
        cursor = 0
        for group in grouped:
            orders = result.components[cursor : cursor + len(group)]
            cursor += len(group)
            if len(orders) == 1:
                folded.append(orders[0])
                continue
            teams = [order.team for order in orders]
            folded.append(
                ComponentOrder(
                    tier=max(order.tier for order in orders),
                    team=(
                        None
                        if any(team is None for team in teams)
                        else frozenset().union(*teams)
                    ),
                    ordered=tuple(
                        sorted(
                            (op for order in orders for op in order.ordered),
                            key=lambda op: op.seq,
                        )
                    ),
                    # The component's order is known once its slowest
                    # group's lane committed.
                    completed=max(order.completed for order in orders),
                )
            )
        result.components = folded
        return result

    def order_assignments(
        self, assignments: Sequence[SyncAssignment]
    ) -> SyncRoundResult:
        """Order pre-planned assignments (cluster path: the router sizes
        teams by owner nodes itself)."""
        result = SyncRoundResult(components=[None] * len(assignments))
        if not assignments:
            return result

        # Tier ∞ — one submission-ordered batch through the global lane,
        # matching the historical single-batch escalation exactly.
        global_index = [i for i, a in enumerate(assignments) if not a.is_team]
        global_time = 0.0
        if global_index:
            merged = sorted(
                (op for i in global_index for op in assignments[i].ops),
                key=lambda op: op.seq,
            )
            ordered = self._order_global(merged)
            cursor = {id(op): pos for pos, op in enumerate(ordered)}
            global_time = self._last_global.virtual_time
            result.global_messages = self._last_global.messages
            result.global_ops = len(merged)
            for i in global_index:
                ops = assignments[i].ops
                committed = tuple(sorted(ops, key=lambda op: cursor[id(op)]))
                self._check_order(committed, ops, "global lane")
                result.components[i] = ComponentOrder(
                    tier=TIER_GLOBAL,
                    team=None,
                    ordered=committed,
                    completed=global_time,
                )

        # Tier k — every team component concurrently on the shared pool.
        team_index = [i for i, a in enumerate(assignments) if a.is_team]
        pool_round = self.pool.order(
            [(assignments[i].team, assignments[i].ops) for i in team_index]
        )
        for i, lane_order in zip(team_index, pool_round.orders):
            ops = assignments[i].ops
            self._check_order(
                lane_order.ordered, ops, f"team lane {sorted(lane_order.team)}"
            )
            result.components[i] = ComponentOrder(
                tier=len(lane_order.team),
                team=lane_order.team,
                ordered=lane_order.ordered,
                completed=lane_order.completed,
            )
            result.team_ops += len(ops)
            size = len(lane_order.team)
            self.k_histogram[size] = self.k_histogram.get(size, 0) + 1
        result.team_sizes = tuple(len(assignments[i].team) for i in team_index)
        result.teams = pool_round.teams
        result.team_messages = pool_round.messages
        result.messages = result.team_messages + result.global_messages
        result.virtual_time = max(global_time, pool_round.makespan)

        self.rounds += 1
        self.total_messages += result.messages
        self.team_messages += result.team_messages
        self.global_messages += result.global_messages
        return result

    # ------------------------------------------------------------------

    def _order_global(self, merged: list) -> tuple:
        self._last_global = self.global_lane.order(merged)
        return tuple(self._last_global.ordered)

    @staticmethod
    def _check_order(committed: tuple, submitted: tuple, lane: str) -> None:
        if tuple(committed) != tuple(submitted):
            raise EngineError(
                f"{lane} committed operations out of submission order; "
                "deterministic merge would diverge from the serial "
                "specification"
            )
