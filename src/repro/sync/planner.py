"""The sync planner: pick the minimal adequate ordering primitive per
contended component.

The trichotomy of lanes (the tentpole's tier table; see also
:mod:`repro.analysis.hierarchy`):

========  =======================  =====================================
tier      primitive                who pays
========  =======================  =====================================
Tier 0    none (owner-only)        uncontended traffic: lane/chain order
                                   is free — the consensus-number-1
                                   regime (CN = 1)
Tier *k*  team lane                a contended component whose spender
          (:mod:`repro.net.       bound has size ``k ≤ team_threshold``:
          team_lanes`)             a *k*-replica total-order instance,
                                   ``O(k²)`` messages, concurrent with
                                   every other team (CN = k, Thm 2–4)
Tier ∞    global lane              spender set above the threshold or
          (shared total order)     not statically boundable (CN = ∞ is
                                   the only always-safe fallback)
========  =======================  =====================================

Tier 0 never reaches this module: the engine's scheduler only hands over
the *contended* components (synchronization groups).  The planner's job is
the Tier *k* / Tier ∞ split, sized by :func:`repro.sync.bounds.
component_team` — and any assignment it makes is *correct*; sizing only
moves the message bill and latency, never the outcome, because every
component is ordered in submission order whichever lane carries it (the
property suite checks serial equivalence for arbitrary thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import EngineError
from repro.objects.footprint import accounts_in
from repro.sync.bounds import component_team

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.mempool import PendingOp

#: Tier of the global fallback lane.
TIER_GLOBAL = math.inf


@dataclass(frozen=True, slots=True)
class SyncAssignment:
    """One contended component's lane assignment."""

    #: ``len(team)`` for a team lane, :data:`TIER_GLOBAL` for the fallback.
    tier: float
    #: Participants of the team lane; ``None`` on the global tier.
    team: frozenset[int] | None
    ops: tuple

    @property
    def is_team(self) -> bool:
        return self.team is not None


class SyncPlanner:
    """Tier selection for contended components.

    ``team_threshold`` is the largest team the planner will provision a
    lane for; ``0`` (the default) disables team lanes entirely, which
    makes the tiered path bit-identical to the historical always-global
    escalation — the safe default existing deployments keep.
    """

    def __init__(
        self,
        team_threshold: int = 0,
        bound_fn: Callable[..., frozenset[int] | None] = component_team,
        split_sync: bool = False,
    ) -> None:
        if team_threshold < 0:
            raise EngineError("team_threshold must be non-negative")
        self.team_threshold = team_threshold
        self.bound_fn = bound_fn
        #: Split each contended component into per-account synchronization
        #: groups before tiering (see :meth:`split_groups`).  ``False``
        #: keeps the historical whole-component sizing bit for bit.
        self.split_sync = split_sync

    # ------------------------------------------------------------------

    def decide(self, team: frozenset[int] | None) -> SyncAssignment | None:
        """Tier for a pre-computed team (no ops attached); helper for
        callers that size teams themselves (the cluster router)."""
        if team is not None and 0 < len(team) <= self.team_threshold:
            return SyncAssignment(tier=len(team), team=team, ops=())
        return SyncAssignment(tier=TIER_GLOBAL, team=None, ops=())

    def assign(
        self,
        components: Sequence["Sequence[PendingOp]"],
        classifier,
        state=None,
        object_type=None,
    ) -> list[SyncAssignment]:
        """One assignment per contended component, in the given order."""
        assignments: list[SyncAssignment] = []
        for ops in components:
            ops = tuple(ops)
            if not ops:
                raise EngineError("cannot assign an empty contended component")
            team = (
                self.bound_fn(classifier, list(ops), state, object_type)
                if self.team_threshold > 0
                else None
            )
            if team is not None and 0 < len(team) <= self.team_threshold:
                assignments.append(
                    SyncAssignment(tier=len(team), team=team, ops=ops)
                )
            else:
                assignments.append(
                    SyncAssignment(tier=TIER_GLOBAL, team=None, ops=ops)
                )
        return assignments

    # -- per-account synchronization-group splitting --------------------

    def split_groups(
        self, ops: "Sequence[PendingOp]", classifier
    ) -> list[tuple]:
        """Partition one contended component into its per-account
        synchronization groups: the connected components of the
        "shares a contended account" relation over its operations.

        Two operations in different groups race on disjoint accounts, so
        no single lane has to sequence them — their relative order is
        already stitched through chain order (the component's own
        submission-order scheduling).  Each group can then be sized by
        *its own* accounts' spender bounds, which keeps k small for
        merged chains whose union bound would blow the threshold.  Any
        unknown footprint collapses the component back into one group
        (the historical whole-component unit).  Groups come out in
        submission order of their first operation; flattening them
        recovers the component's operations exactly.
        """
        ops = tuple(ops)
        group_of_account: dict[int, int] = {}
        parent = list(range(len(ops)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, op in enumerate(ops):
            fp = classifier.footprint(op)
            if fp is None:
                return [ops]
            for account in accounts_in(fp.contended):
                holder = group_of_account.setdefault(account, i)
                root_a, root_b = find(holder), find(i)
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
        members: dict[int, list] = {}
        for i, op in enumerate(ops):
            members.setdefault(find(i), []).append(op)
        return [tuple(members[root]) for root in sorted(members)]

    def assign_groups(
        self,
        components: Sequence["Sequence[PendingOp]"],
        classifier,
        state=None,
        object_type=None,
    ) -> list[list[SyncAssignment]]:
        """Per component: its synchronization-group assignments — one
        whole-component assignment when ``split_sync`` is off (or nothing
        splits), the per-account groups otherwise."""
        if not self.split_sync:
            return [
                [assignment]
                for assignment in self.assign(
                    components, classifier, state=state, object_type=object_type
                )
            ]
        grouped: list[list[SyncAssignment]] = []
        for ops in components:
            subgroups = self.split_groups(tuple(ops), classifier)
            grouped.append(
                self.assign(
                    subgroups, classifier, state=state, object_type=object_type
                )
            )
        return grouped
