"""Workload generators and canonical traces."""

from repro.workloads.generators import (
    APPROVAL_HEAVY_MIX,
    EXAMPLE1_BALANCES,
    EXAMPLE1_RESPONSES,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
    example1_trace,
    partition_by_process,
)

__all__ = [
    "APPROVAL_HEAVY_MIX",
    "EXAMPLE1_BALANCES",
    "EXAMPLE1_RESPONSES",
    "OWNER_ONLY_MIX",
    "SPENDER_HEAVY_MIX",
    "TokenWorkloadGenerator",
    "WorkloadItem",
    "WorkloadMix",
    "example1_trace",
    "partition_by_process",
]
