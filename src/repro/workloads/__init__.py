"""Workload generators and canonical traces."""

from repro.workloads.generators import (
    APPROVAL_HEAVY_MIX,
    EXAMPLE1_BALANCES,
    EXAMPLE1_RESPONSES,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    AssetTransferWorkloadGenerator,
    ContractStream,
    MultiContractItem,
    MultiContractWorkloadGenerator,
    NFTWorkloadGenerator,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
    example1_trace,
    partition_by_process,
    standard_multi_contract,
)
from repro.workloads.skew import skewed_index, validate_skew, zipf_weights

__all__ = [
    "APPROVAL_HEAVY_MIX",
    "EXAMPLE1_BALANCES",
    "EXAMPLE1_RESPONSES",
    "OWNER_ONLY_MIX",
    "SPENDER_HEAVY_MIX",
    "AssetTransferWorkloadGenerator",
    "ContractStream",
    "MultiContractItem",
    "MultiContractWorkloadGenerator",
    "NFTWorkloadGenerator",
    "TokenWorkloadGenerator",
    "WorkloadItem",
    "WorkloadMix",
    "example1_trace",
    "partition_by_process",
    "skewed_index",
    "standard_multi_contract",
    "validate_skew",
    "zipf_weights",
]
