"""Open-loop arrival processes and the stream driver.

The closed-loop benches feed a whole workload at virtual time zero and
measure the drain; production token traffic is an *open loop* — ops
arrive on their own schedule whether or not the system keeps up
("Rectifying Administrated ERC20 Tokens" measures exactly this bursty,
Zipf-skewed shape).  This module supplies the two halves:

* **arrival processes** — :func:`poisson_arrivals` (memoryless at a
  fixed offered rate) and :func:`onoff_arrivals` (alternating bursts
  and silences, the administrated-token pattern).  Both take their
  *items* from any workload generator, so account skew comes from the
  existing :mod:`repro.workloads.skew` knobs
  (``TokenWorkloadGenerator(zipf_s=…, hotspot_fraction=…)``) and the
  timing knobs stay orthogonal to the content knobs;
* **the driver** — :class:`StreamDriver` feeds timed arrivals into a
  :class:`~repro.engine.executor.BatchExecutor`,
  :class:`~repro.engine.pipeline.PipelinedExecutor`, or
  :class:`~repro.cluster.TokenCluster` through the existing mempool +
  ``submit(…, arrival=…)`` lifecycle stamp.  No engine rewrite: the
  driver releases the arrivals due by the target's current virtual
  admission time (``stream_now()``), advances the idle clock across
  quiet gaps (``stream_advance``), and otherwise drives the exact same
  ``step()`` / round loops the closed-loop path uses — an undriven run
  stays bit-identical.

Latency is commit − arrival, read from the tracer's per-op lifecycle,
so a driven target **must** carry a :class:`~repro.obs.TraceRecorder`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import MempoolFullError, StreamError
from repro.workloads.generators import WorkloadItem

if TYPE_CHECKING:  # avoid the engine <-> workloads import cycle
    from repro.engine.mempool import PendingOp


@dataclass(frozen=True, slots=True)
class Arrival:
    """One timed submission: ``item`` offered at virtual time ``time``."""

    time: float
    item: WorkloadItem


def poisson_arrivals(
    items: Iterable[WorkloadItem],
    rate: float,
    seed: int = 0,
    start: float = 0.0,
) -> list[Arrival]:
    """Stamp ``items`` with Poisson arrival times at ``rate`` ops per
    virtual-time unit (exponential gaps, seeded and deterministic)."""
    if rate <= 0:
        raise StreamError("the offered rate must be positive")
    rng = random.Random(seed)
    clock = start
    arrivals = []
    for item in items:
        clock += rng.expovariate(rate)
        arrivals.append(Arrival(time=clock, item=item))
    return arrivals


def onoff_arrivals(
    items: Iterable[WorkloadItem],
    burst_rate: float,
    burst_time: float,
    idle_time: float,
    seed: int = 0,
    start: float = 0.0,
) -> list[Arrival]:
    """Bursty on-off arrivals: Poisson at ``burst_rate`` for
    ``burst_time``, then silent for ``idle_time``, repeating.  The mean
    offered rate is ``burst_rate * burst_time / (burst_time +
    idle_time)``, but the instantaneous rate the system must absorb is
    the burst rate — the shape that exposes queue buildup a smooth
    Poisson stream at the same mean would hide."""
    if burst_rate <= 0:
        raise StreamError("the burst rate must be positive")
    if burst_time <= 0 or idle_time < 0:
        raise StreamError("burst_time must be positive, idle_time >= 0")
    rng = random.Random(seed)
    clock = start
    window_start = start
    arrivals = []
    for item in items:
        clock += rng.expovariate(burst_rate)
        while clock >= window_start + burst_time:
            # The gap pushes past this burst: carry the residual into
            # the next one, skipping the silent period.
            clock += idle_time
            window_start += burst_time + idle_time
        arrivals.append(Arrival(time=clock, item=item))
    return arrivals


@dataclass(slots=True)
class StreamReport:
    """What one driven run did: admission tallies and the final clock."""

    offered: int
    admitted: list[PendingOp] = field(default_factory=list)
    dropped: int = 0
    makespan: float = 0.0
    #: The target's own aggregate statistics object.
    stats: Any = None

    @property
    def duration(self) -> float:
        return self.makespan

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": len(self.admitted),
            "dropped": self.dropped,
            "makespan": self.makespan,
        }


class StreamDriver:
    """Feed timed arrivals into an executor or cluster, open loop.

    The driver's contract with the target is three methods —
    ``stream_now()`` (the current virtual admission time),
    ``stream_advance(ts)`` (advance the idle clock across a quiet gap),
    and ``submit(pid, op, arrival=ts)`` (the lifecycle stamp) — plus
    the target's own round loop.  Arrivals are released in time order,
    never before their arrival time and never late: an arrival due
    during a round is admitted before the next admission point, which
    is also the earliest instant the target could classify it.

    Backpressure stays open-loop: a bounded mempool that sheds an
    arrival counts a drop and the stream keeps going (the client does
    not politely wait, unlike ``run_workload``'s closed-loop pacing).
    """

    def __init__(self, target: Any, arrivals: Iterable[Arrival]) -> None:
        self.target = target
        self.arrivals = sorted(arrivals, key=lambda a: a.time)
        if self.arrivals and self.arrivals[0].time < 0:
            raise StreamError("arrival times must be non-negative")
        if getattr(target, "tracer", None) is None:
            raise StreamError(
                "open-loop latency is commit - arrival, read from the "
                "tracer's per-op lifecycle; construct the target with "
                "tracer=TraceRecorder()"
            )

    def run(self) -> StreamReport:
        """Drive the whole stream to quiescence; returns the report."""
        report = StreamReport(offered=len(self.arrivals))
        if hasattr(self.target, "router"):
            self._run_cluster(report)
        else:
            self._run_engine(report)
        return report

    # -- engines ---------------------------------------------------------

    def _release_due(self, now: float, index: int, report) -> int:
        """Submit every arrival due by ``now``; returns the new cursor."""
        target = self.target
        arrivals = self.arrivals
        while index < len(arrivals) and arrivals[index].time <= now:
            arrival = arrivals[index]
            index += 1
            try:
                pending = target.submit(
                    arrival.item.pid,
                    arrival.item.operation,
                    arrival=arrival.time,
                )
            except MempoolFullError:
                report.dropped += 1
                continue
            if pending is None:  # the cluster router sheds, not raises
                report.dropped += 1
            else:
                report.admitted.append(pending)
        return index

    def _run_engine(self, report: StreamReport) -> None:
        engine = self.target
        index = 0
        while True:
            index = self._release_due(engine.stream_now(), index, report)
            if not engine.mempool:
                if index >= len(self.arrivals):
                    break
                engine.stream_advance(self.arrivals[index].time)
                continue
            engine.step()
        # Commit the pipelined tail / final accounting; the mempool is
        # already empty, so this schedules nothing new.
        engine.run()
        report.makespan = engine.clock
        report.stats = engine.stats

    # -- cluster ---------------------------------------------------------

    def _run_cluster(self, report: StreamReport) -> None:
        cluster = self.target
        router = cluster.router
        simulator = cluster.simulator
        pipelined = router.pipeline_depth > 1
        index = 0
        while True:
            index = self._release_due(
                cluster.stream_now(), index, report
            )
            next_time = (
                self.arrivals[index].time
                if index < len(self.arrivals)
                else None
            )
            if pipelined:
                router.pump()
            elif router.idle and router.mempool:
                router.start_round()
            if simulator.pending_events:
                # Run the protocol up to the next arrival (events beyond
                # it stay queued), so admissions interleave with rounds
                # at the granularity of the event loop itself.
                processed = simulator.run(until=next_time)
                if processed == 0 and next_time is not None:
                    cluster.stream_advance(next_time)
                continue
            if next_time is not None:
                cluster.stream_advance(next_time)
                continue
            if router.mempool and router.idle:
                continue
            if router.mempool or not router.idle:
                raise StreamError(
                    "stream stalled: work pending but no events queued"
                )
            break
        report.stats = cluster.stream_finish()
        report.makespan = simulator.now
