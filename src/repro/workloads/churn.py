"""Churn schedules for fault experiments.

Two builders pair with :mod:`repro.faults`:

* :func:`crash_cadence` — a rolling crash/restart schedule over the
  cluster's nodes, emitted as the ``(node, crash_at, restart_at)``
  triples :class:`repro.config.FaultConfig` accepts verbatim.  The
  cadence staggers crashes so the cluster degrades gradually instead of
  losing several nodes at once.
* :func:`flash_crowd` — an ERC20 workload whose hot-spot *migrates*:
  the run is split into phases and each phase concentrates traffic on a
  different account window.  Under fail-over this is the adversarial
  shape — the shards a revocation just rebalanced go cold while a new
  window heats up, so recovery placement is continually invalidated.

Both are deterministic per seed, like every generator in this package.
"""

from __future__ import annotations

import random

from repro.errors import InvalidArgumentError
from repro.spec.operation import Operation
from repro.workloads.generators import WorkloadItem

__all__ = ["crash_cadence", "flash_crowd"]


def crash_cadence(
    num_nodes: int,
    *,
    start: float,
    spacing: float,
    downtime: float | None,
    crashes: int | None = None,
) -> tuple[tuple[int, float, float | None], ...]:
    """A rolling crash schedule: crash ``i`` hits node ``i % num_nodes``
    at ``start + i * spacing`` and restarts it ``downtime`` later
    (``downtime=None`` = permanent).  ``crashes`` defaults to one pass
    over the nodes — capped at ``num_nodes - 1`` when permanent, so at
    least one node survives the whole schedule.
    """
    if num_nodes < 2:
        raise InvalidArgumentError("a crash cadence needs at least 2 nodes")
    if start < 0 or spacing <= 0:
        raise InvalidArgumentError(
            "crash cadence needs start >= 0 and spacing > 0"
        )
    if downtime is not None and downtime <= 0:
        raise InvalidArgumentError("downtime must be positive (or None)")
    if crashes is None:
        crashes = num_nodes if downtime is not None else num_nodes - 1
    if crashes < 1:
        raise InvalidArgumentError("need at least one crash")
    if downtime is None and crashes >= num_nodes:
        raise InvalidArgumentError(
            "a permanent cadence must leave at least one node alive"
        )
    schedule = []
    for i in range(crashes):
        at = start + i * spacing
        schedule.append(
            (i % num_nodes, at, at + downtime if downtime is not None else None)
        )
    return tuple(schedule)


def flash_crowd(
    num_accounts: int,
    count: int,
    *,
    phases: int = 4,
    hotspot_accounts: int = 4,
    hotspot_fraction: float = 0.8,
    max_value: int = 10,
    seed: int = 0,
) -> list[WorkloadItem]:
    """An ERC20 transfer workload whose hot window migrates each phase.

    The ``count`` ops are split evenly over ``phases``; phase ``p``
    routes ``hotspot_fraction`` of its account draws uniformly into a
    ``hotspot_accounts``-wide window starting at
    ``p * (num_accounts // phases)``, the rest uniformly over all
    accounts.  Transfers only — the point is *where* the load sits, not
    the conflict structure.
    """
    if num_accounts < 1 or count < 1:
        raise InvalidArgumentError("need at least one account and one op")
    if phases < 1 or phases > count:
        raise InvalidArgumentError(f"phases must be in [1, {count}]")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise InvalidArgumentError("hotspot_fraction must be in [0, 1]")
    if not 1 <= hotspot_accounts <= num_accounts:
        raise InvalidArgumentError(
            f"hot window must be in [1, {num_accounts}] accounts"
        )
    rng = random.Random(seed)
    stride = max(1, num_accounts // phases)
    items: list[WorkloadItem] = []
    for i in range(count):
        phase = min(phases - 1, i * phases // count)
        base = (phase * stride) % num_accounts

        def draw() -> int:
            if rng.random() < hotspot_fraction:
                return (base + rng.randrange(hotspot_accounts)) % num_accounts
            return rng.randrange(num_accounts)

        items.append(
            WorkloadItem(
                pid=draw(),
                operation=Operation(
                    "transfer", (draw(), rng.randint(0, max_value))
                ),
            )
        )
    return items
