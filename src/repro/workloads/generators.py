"""Workload generation: seeded random token traffic and the paper's
Example 1 trace.

Workloads drive the differential tests (E4), the dynamics experiment (E5),
and the network benchmarks (E8).  All generators are deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import InvalidArgumentError
from repro.spec.operation import Operation
from repro.workloads.skew import skewed_index, validate_skew, zipf_weights


@dataclass(frozen=True, slots=True)
class WorkloadItem:
    """One operation of a token workload."""

    pid: int
    operation: Operation

    def __str__(self) -> str:
        return f"p{self.pid}: {self.operation}"


@dataclass
class WorkloadMix:
    """Relative operation-type weights for a generated workload."""

    transfer: float = 0.5
    transfer_from: float = 0.2
    approve: float = 0.15
    balance_of: float = 0.1
    allowance: float = 0.04
    total_supply: float = 0.01

    def weights(self) -> list[tuple[str, float]]:
        entries = [
            ("transfer", self.transfer),
            ("transferFrom", self.transfer_from),
            ("approve", self.approve),
            ("balanceOf", self.balance_of),
            ("allowance", self.allowance),
            ("totalSupply", self.total_supply),
        ]
        if any(weight < 0 for _, weight in entries):
            raise InvalidArgumentError("mix weights must be non-negative")
        if sum(weight for _, weight in entries) <= 0:
            raise InvalidArgumentError("mix weights must not all be zero")
        return entries


#: Owner-traffic-only mix: the consensus-number-1 regime of the paper.
OWNER_ONLY_MIX = WorkloadMix(
    transfer=0.8, transfer_from=0.0, approve=0.0, balance_of=0.2, allowance=0.0
)

#: Spender-heavy mix: stresses the synchronization groups.
SPENDER_HEAVY_MIX = WorkloadMix(
    transfer=0.25,
    transfer_from=0.45,
    approve=0.2,
    balance_of=0.1,
    allowance=0.0,
)

#: Approval-heavy mix: maximizes approve/transferFrom races (Theorem 3's
#: Case 4) — the worst case for the execution engine's escalation path.
APPROVAL_HEAVY_MIX = WorkloadMix(
    transfer=0.15,
    transfer_from=0.35,
    approve=0.4,
    balance_of=0.1,
    allowance=0.0,
)

#: Chain-heavy mix: long mixed approve/transferFrom/allowance components.
#: Approvals and allowance reads against *distinct* spenders mutually
#: commute while each pairs with its own transferFrom, so the resulting
#: conflict components are long but wide (antichain width ≥ 2) — the
#: administrated-token traffic shape (Ivanov et al.) where op-granular
#: DAG scheduling beats chain-atomic placement the hardest.
CHAIN_HEAVY_MIX = WorkloadMix(
    transfer=0.1,
    transfer_from=0.3,
    approve=0.4,
    balance_of=0.05,
    allowance=0.15,
)


@dataclass
class TokenWorkloadGenerator:
    """Seeded random generator of ERC20 operations.

    Accounts are drawn either uniformly or with a Zipf-like skew
    (``zipf_s > 0``), reflecting the heavy-tailed account popularity measured
    on real ERC20 traffic (Victor & Lüders [27], cited by the paper).

    On top of either base distribution, a *hot-spot* overlay
    (``hotspot_fraction > 0``) routes that fraction of all account draws
    uniformly into the first ``hotspot_accounts`` accounts — the
    exchange-wallet pattern: a few accounts appear in a large share of all
    transfers.  This is the contention knob the execution engine
    (:mod:`repro.engine`) is benchmarked under; like everything here it is
    deterministic per seed.

    ``spender_pool > 0`` confines the *spender relation* to contiguous
    account groups of that size: ``approve`` picks its spender from the
    caller's own group and ``transferFrom`` picks its source there too, so
    every account's potential-spender set (:func:`repro.analysis.spenders.
    potential_spenders`) stays within its group — the administrated-token
    pattern (a bounded operator set per account, cf. Ivanov et al.) that
    keeps the paper's consensus number ``k(q)`` at most ``spender_pool``
    while ``n`` grows.  This is the traffic shape the tiered
    synchronization lanes (:mod:`repro.sync`) are benchmarked under.
    """

    num_accounts: int
    seed: int = 0
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    max_value: int = 10
    zipf_s: float = 0.0
    hotspot_fraction: float = 0.0
    hotspot_accounts: int = 1
    spender_pool: int = 0

    def __post_init__(self) -> None:
        if self.num_accounts < 1:
            raise InvalidArgumentError("need at least one account")
        if self.max_value < 0:
            raise InvalidArgumentError("max_value must be non-negative")
        if self.spender_pool < 0 or self.spender_pool > self.num_accounts:
            raise InvalidArgumentError(
                f"spender_pool must be in [0, {self.num_accounts}]"
            )
        validate_skew(
            self.hotspot_fraction, self.hotspot_accounts, self.num_accounts
        )
        self._rng = random.Random(self.seed)
        self._account_weights = (
            zipf_weights(self.num_accounts, self.zipf_s)
            if self.zipf_s > 0
            else None
        )

    # ------------------------------------------------------------------

    def _pick_account(self) -> int:
        return skewed_index(
            self._rng,
            self.num_accounts,
            self._account_weights,
            self.hotspot_fraction,
            self.hotspot_accounts,
        )

    def _pick_value(self) -> int:
        return self._rng.randint(0, self.max_value)

    def _pick_pool_member(self, pid: int) -> int:
        """An account from ``pid``'s spender pool (``pid`` itself allowed)."""
        base = pid - pid % self.spender_pool
        size = min(self.spender_pool, self.num_accounts - base)
        return base + self._rng.randrange(size)

    def next_item(self) -> WorkloadItem:
        """Generate one operation."""
        names, weights = zip(*self.mix.weights())
        name = self._rng.choices(names, weights=weights)[0]
        pid = self._pick_account()
        pooled = self.spender_pool > 0
        if name == "transfer":
            operation = Operation(
                name, (self._pick_account(), self._pick_value())
            )
        elif name == "transferFrom":
            source = (
                self._pick_pool_member(pid) if pooled else self._pick_account()
            )
            operation = Operation(
                name,
                (source, self._pick_account(), self._pick_value()),
            )
        elif name == "approve":
            spender = (
                self._pick_pool_member(pid) if pooled else self._pick_account()
            )
            operation = Operation(name, (spender, self._pick_value()))
        elif name == "balanceOf":
            operation = Operation(name, (self._pick_account(),))
        elif name == "allowance":
            operation = Operation(
                name, (self._pick_account(), self._pick_account())
            )
        else:
            operation = Operation("totalSupply")
        return WorkloadItem(pid=pid, operation=operation)

    def generate(self, count: int) -> list[WorkloadItem]:
        """Generate ``count`` operations."""
        return [self.next_item() for _ in range(count)]

    def stream(self) -> Iterator[WorkloadItem]:
        """An unbounded operation stream."""
        while True:
            yield self.next_item()


@dataclass
class NFTWorkloadGenerator:
    """Seeded random generator of ERC721 operations.

    Token-id popularity carries the skew (``zipf_s`` base distribution plus
    a ``hotspot_fraction`` overlay on the first ``hotspot_tokens`` ids) —
    the §6 contention pattern is always about one specific token, so a hot
    token id is the NFT analogue of an exchange wallet.
    """

    num_processes: int
    num_tokens: int
    seed: int = 0
    zipf_s: float = 0.0
    hotspot_fraction: float = 0.0
    hotspot_tokens: int = 1

    def __post_init__(self) -> None:
        if self.num_processes < 1 or self.num_tokens < 1:
            raise InvalidArgumentError("need processes and tokens")
        validate_skew(
            self.hotspot_fraction, self.hotspot_tokens, self.num_tokens
        )
        self._rng = random.Random(self.seed)
        self._token_weights = (
            zipf_weights(self.num_tokens, self.zipf_s)
            if self.zipf_s > 0
            else None
        )

    def _pick_token(self) -> int:
        return skewed_index(
            self._rng,
            self.num_tokens,
            self._token_weights,
            self.hotspot_fraction,
            self.hotspot_tokens,
        )

    def next_item(self) -> WorkloadItem:
        pid = self._rng.randrange(self.num_processes)
        name = self._rng.choices(
            ("transferFrom", "approve", "ownerOf", "setApprovalForAll"),
            weights=(0.45, 0.2, 0.25, 0.1),
        )[0]
        if name == "transferFrom":
            operation = Operation(
                name,
                (
                    self._rng.randrange(self.num_processes),
                    self._rng.randrange(self.num_processes),
                    self._pick_token(),
                ),
            )
        elif name == "approve":
            operation = Operation(
                name,
                (self._rng.randrange(self.num_processes), self._pick_token()),
            )
        elif name == "ownerOf":
            operation = Operation(name, (self._pick_token(),))
        else:
            operation = Operation(
                name,
                (
                    self._rng.randrange(self.num_processes),
                    self._rng.random() < 0.5,
                ),
            )
        return WorkloadItem(pid=pid, operation=operation)

    def generate(self, count: int) -> list[WorkloadItem]:
        return [self.next_item() for _ in range(count)]


@dataclass
class AssetTransferWorkloadGenerator:
    """Seeded random generator of asset-transfer operations (the paper's
    §5 object), with the same account-skew knobs as the token generators."""

    num_accounts: int
    num_processes: int
    seed: int = 0
    zipf_s: float = 0.0
    hotspot_fraction: float = 0.0
    hotspot_accounts: int = 1
    max_value: int = 10
    read_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_accounts < 1 or self.num_processes < 1:
            raise InvalidArgumentError("need accounts and processes")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise InvalidArgumentError("read_fraction must be in [0, 1]")
        validate_skew(
            self.hotspot_fraction, self.hotspot_accounts, self.num_accounts
        )
        self._rng = random.Random(self.seed)
        self._account_weights = (
            zipf_weights(self.num_accounts, self.zipf_s)
            if self.zipf_s > 0
            else None
        )

    def _pick_account(self) -> int:
        return skewed_index(
            self._rng,
            self.num_accounts,
            self._account_weights,
            self.hotspot_fraction,
            self.hotspot_accounts,
        )

    def next_item(self) -> WorkloadItem:
        pid = self._rng.randrange(self.num_processes)
        if self._rng.random() < self.read_fraction:
            return WorkloadItem(
                pid=pid,
                operation=Operation("balanceOf", (self._pick_account(),)),
            )
        return WorkloadItem(
            pid=pid,
            operation=Operation(
                "transfer",
                (
                    self._pick_account(),
                    self._pick_account(),
                    self._rng.randint(0, self.max_value),
                ),
            ),
        )

    def generate(self, count: int) -> list[WorkloadItem]:
        return [self.next_item() for _ in range(count)]


@dataclass(frozen=True, slots=True)
class MultiContractItem:
    """One operation of an interleaved multi-contract trace."""

    contract: str
    pid: int
    operation: Operation

    @property
    def item(self) -> WorkloadItem:
        return WorkloadItem(pid=self.pid, operation=self.operation)

    def __str__(self) -> str:
        return f"[{self.contract}] p{self.pid}: {self.operation}"


@dataclass
class ContractStream:
    """One contract's operation stream inside a multi-contract mix."""

    name: str
    generator: object  # anything with next_item() -> WorkloadItem
    weight: float = 1.0


class MultiContractWorkloadGenerator:
    """Interleaves per-contract streams into one submission-ordered trace.

    Real token traffic is not one contract: exchanges settle ERC20
    transfers while NFT mints and asset transfers share the same mempool.
    Each draw picks a contract (seeded, weight-proportional) and takes that
    stream's next operation, so per-contract subsequences keep their own
    skew while the merged trace exercises multi-contract routing.  Use
    :meth:`split` to recover per-contract engine/cluster feeds.
    """

    def __init__(self, streams: list[ContractStream], seed: int = 0) -> None:
        if not streams:
            raise InvalidArgumentError("need at least one contract stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise InvalidArgumentError("contract stream names must be unique")
        if any(stream.weight <= 0 for stream in streams):
            raise InvalidArgumentError("stream weights must be positive")
        self.streams = list(streams)
        self._rng = random.Random(seed)

    def next_item(self) -> MultiContractItem:
        stream = self._rng.choices(
            self.streams, weights=[s.weight for s in self.streams]
        )[0]
        item = stream.generator.next_item()
        return MultiContractItem(
            contract=stream.name, pid=item.pid, operation=item.operation
        )

    def generate(self, count: int) -> list[MultiContractItem]:
        return [self.next_item() for _ in range(count)]

    @staticmethod
    def split(
        items: Sequence[MultiContractItem],
    ) -> dict[str, list[WorkloadItem]]:
        """Per-contract subsequences (order preserved) for per-contract
        executors."""
        buckets: dict[str, list[WorkloadItem]] = {}
        for item in items:
            buckets.setdefault(item.contract, []).append(item.item)
        return buckets


def standard_multi_contract(
    num_accounts: int = 32,
    seed: int = 0,
    zipf_s: float = 0.0,
    hotspot_fraction: float = 0.0,
) -> tuple[dict, MultiContractWorkloadGenerator]:
    """The canonical three-contract deployment: an ERC20 token, an ERC721
    collection, and a §5 asset-transfer object, with one shared skew
    setting.  Returns ``(object_types_by_name, generator)`` so callers can
    route each subsequence to a matching executor (one engine or cluster
    per contract, the multi-token pattern)."""
    from repro.objects.asset_transfer import AssetTransferType
    from repro.objects.erc20 import ERC20TokenType
    from repro.objects.erc721 import ERC721TokenType

    hotspot_count = max(1, min(2, num_accounts))
    object_types = {
        "erc20": ERC20TokenType(num_accounts, total_supply=100 * num_accounts),
        "erc721": ERC721TokenType(
            num_accounts,
            initial_owners=[t % num_accounts for t in range(2 * num_accounts)],
        ),
        "asset": AssetTransferType(
            [50] * num_accounts, num_processes=num_accounts
        ),
    }
    generator = MultiContractWorkloadGenerator(
        [
            ContractStream(
                "erc20",
                TokenWorkloadGenerator(
                    num_accounts,
                    seed=seed,
                    zipf_s=zipf_s,
                    hotspot_fraction=hotspot_fraction,
                    hotspot_accounts=hotspot_count,
                ),
                weight=0.5,
            ),
            ContractStream(
                "erc721",
                NFTWorkloadGenerator(
                    num_accounts,
                    num_tokens=2 * num_accounts,
                    seed=seed + 1,
                    zipf_s=zipf_s,
                    hotspot_fraction=hotspot_fraction,
                    hotspot_tokens=hotspot_count,
                ),
                weight=0.25,
            ),
            ContractStream(
                "asset",
                AssetTransferWorkloadGenerator(
                    num_accounts,
                    num_processes=num_accounts,
                    seed=seed + 2,
                    zipf_s=zipf_s,
                    hotspot_fraction=hotspot_fraction,
                    hotspot_accounts=hotspot_count,
                ),
                weight=0.25,
            ),
        ],
        seed=seed,
    )
    return object_types, generator


def example1_trace() -> list[WorkloadItem]:
    """The paper's Example 1 (§4): Alice (p0) deploys with supply 10, sends 3
    to Bob (p1); Bob approves Charlie (p2) for 5; Charlie's first
    transferFrom fails on Bob's balance; his second succeeds."""
    return [
        WorkloadItem(0, Operation("transfer", (1, 3))),
        WorkloadItem(1, Operation("approve", (2, 5))),
        WorkloadItem(2, Operation("transferFrom", (1, 2, 5))),
        WorkloadItem(2, Operation("transferFrom", (1, 0, 1))),
    ]


#: Expected responses along Example 1's trace.
EXAMPLE1_RESPONSES: tuple[object, ...] = (True, True, False, True)

#: Expected balance vectors after each Example 1 step (q1..q4), 3 accounts.
EXAMPLE1_BALANCES: tuple[tuple[int, int, int], ...] = (
    (7, 3, 0),
    (7, 3, 0),
    (7, 3, 0),
    (8, 2, 0),
)


def partition_by_process(
    items: Sequence[WorkloadItem], num_processes: int
) -> list[list[WorkloadItem]]:
    """Split a workload into per-process subsequences (preserving order)."""
    buckets: list[list[WorkloadItem]] = [[] for _ in range(num_processes)]
    for item in items:
        if not 0 <= item.pid < num_processes:
            raise InvalidArgumentError(f"workload pid {item.pid} out of range")
        buckets[item.pid].append(item)
    return buckets
