"""Workload generation: seeded random token traffic and the paper's
Example 1 trace.

Workloads drive the differential tests (E4), the dynamics experiment (E5),
and the network benchmarks (E8).  All generators are deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import InvalidArgumentError
from repro.spec.operation import Operation


@dataclass(frozen=True, slots=True)
class WorkloadItem:
    """One operation of a token workload."""

    pid: int
    operation: Operation

    def __str__(self) -> str:
        return f"p{self.pid}: {self.operation}"


@dataclass
class WorkloadMix:
    """Relative operation-type weights for a generated workload."""

    transfer: float = 0.5
    transfer_from: float = 0.2
    approve: float = 0.15
    balance_of: float = 0.1
    allowance: float = 0.04
    total_supply: float = 0.01

    def weights(self) -> list[tuple[str, float]]:
        entries = [
            ("transfer", self.transfer),
            ("transferFrom", self.transfer_from),
            ("approve", self.approve),
            ("balanceOf", self.balance_of),
            ("allowance", self.allowance),
            ("totalSupply", self.total_supply),
        ]
        if any(weight < 0 for _, weight in entries):
            raise InvalidArgumentError("mix weights must be non-negative")
        if sum(weight for _, weight in entries) <= 0:
            raise InvalidArgumentError("mix weights must not all be zero")
        return entries


#: Owner-traffic-only mix: the consensus-number-1 regime of the paper.
OWNER_ONLY_MIX = WorkloadMix(
    transfer=0.8, transfer_from=0.0, approve=0.0, balance_of=0.2, allowance=0.0
)

#: Spender-heavy mix: stresses the synchronization groups.
SPENDER_HEAVY_MIX = WorkloadMix(
    transfer=0.25, transfer_from=0.45, approve=0.2, balance_of=0.1, allowance=0.0
)

#: Approval-heavy mix: maximizes approve/transferFrom races (Theorem 3's
#: Case 4) — the worst case for the execution engine's escalation path.
APPROVAL_HEAVY_MIX = WorkloadMix(
    transfer=0.15, transfer_from=0.35, approve=0.4, balance_of=0.1, allowance=0.0
)


@dataclass
class TokenWorkloadGenerator:
    """Seeded random generator of ERC20 operations.

    Accounts are drawn either uniformly or with a Zipf-like skew
    (``zipf_s > 0``), reflecting the heavy-tailed account popularity measured
    on real ERC20 traffic (Victor & Lüders [27], cited by the paper).

    On top of either base distribution, a *hot-spot* overlay
    (``hotspot_fraction > 0``) routes that fraction of all account draws
    uniformly into the first ``hotspot_accounts`` accounts — the
    exchange-wallet pattern: a few accounts appear in a large share of all
    transfers.  This is the contention knob the execution engine
    (:mod:`repro.engine`) is benchmarked under; like everything here it is
    deterministic per seed.
    """

    num_accounts: int
    seed: int = 0
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    max_value: int = 10
    zipf_s: float = 0.0
    hotspot_fraction: float = 0.0
    hotspot_accounts: int = 1

    def __post_init__(self) -> None:
        if self.num_accounts < 1:
            raise InvalidArgumentError("need at least one account")
        if self.max_value < 0:
            raise InvalidArgumentError("max_value must be non-negative")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise InvalidArgumentError("hotspot_fraction must be in [0, 1]")
        if not 1 <= self.hotspot_accounts <= self.num_accounts:
            raise InvalidArgumentError(
                "hotspot_accounts must be in [1, num_accounts]"
            )
        self._rng = random.Random(self.seed)
        if self.zipf_s > 0:
            weights = [
                1.0 / ((rank + 1) ** self.zipf_s)
                for rank in range(self.num_accounts)
            ]
            total = sum(weights)
            self._account_weights = [weight / total for weight in weights]
        else:
            self._account_weights = None

    # ------------------------------------------------------------------

    def _pick_account(self) -> int:
        if (
            self.hotspot_fraction > 0
            and self._rng.random() < self.hotspot_fraction
        ):
            return self._rng.randrange(self.hotspot_accounts)
        if self._account_weights is None:
            return self._rng.randrange(self.num_accounts)
        return self._rng.choices(
            range(self.num_accounts), weights=self._account_weights
        )[0]

    def _pick_value(self) -> int:
        return self._rng.randint(0, self.max_value)

    def next_item(self) -> WorkloadItem:
        """Generate one operation."""
        names, weights = zip(*self.mix.weights())
        name = self._rng.choices(names, weights=weights)[0]
        pid = self._pick_account()
        if name == "transfer":
            operation = Operation(name, (self._pick_account(), self._pick_value()))
        elif name == "transferFrom":
            operation = Operation(
                name,
                (self._pick_account(), self._pick_account(), self._pick_value()),
            )
        elif name == "approve":
            operation = Operation(name, (self._pick_account(), self._pick_value()))
        elif name == "balanceOf":
            operation = Operation(name, (self._pick_account(),))
        elif name == "allowance":
            operation = Operation(name, (self._pick_account(), self._pick_account()))
        else:
            operation = Operation("totalSupply")
        return WorkloadItem(pid=pid, operation=operation)

    def generate(self, count: int) -> list[WorkloadItem]:
        """Generate ``count`` operations."""
        return [self.next_item() for _ in range(count)]

    def stream(self) -> Iterator[WorkloadItem]:
        """An unbounded operation stream."""
        while True:
            yield self.next_item()


def example1_trace() -> list[WorkloadItem]:
    """The paper's Example 1 (§4): Alice (p0) deploys with supply 10, sends 3
    to Bob (p1); Bob approves Charlie (p2) for 5; Charlie's first
    transferFrom fails on Bob's balance; his second succeeds."""
    return [
        WorkloadItem(0, Operation("transfer", (1, 3))),
        WorkloadItem(1, Operation("approve", (2, 5))),
        WorkloadItem(2, Operation("transferFrom", (1, 2, 5))),
        WorkloadItem(2, Operation("transferFrom", (1, 0, 1))),
    ]


#: Expected responses along Example 1's trace.
EXAMPLE1_RESPONSES: tuple[object, ...] = (True, True, False, True)

#: Expected balance vectors after each Example 1 step (q1..q4), 3 accounts.
EXAMPLE1_BALANCES: tuple[tuple[int, int, int], ...] = (
    (7, 3, 0),
    (7, 3, 0),
    (7, 3, 0),
    (8, 2, 0),
)


def partition_by_process(
    items: Sequence[WorkloadItem], num_processes: int
) -> list[list[WorkloadItem]]:
    """Split a workload into per-process subsequences (preserving order)."""
    buckets: list[list[WorkloadItem]] = [[] for _ in range(num_processes)]
    for item in items:
        if not 0 <= item.pid < num_processes:
            raise InvalidArgumentError(f"workload pid {item.pid} out of range")
        buckets[item.pid].append(item)
    return buckets
