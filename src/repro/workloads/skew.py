"""Shared account-popularity skew model (Zipf base + hot-spot overlay).

Every workload generator in the repository — ERC20/ERC721/asset-transfer
traffic in :mod:`repro.workloads.generators` and the cluster-geometry-aware
builders in :mod:`repro.cluster.workloads` — draws indices through the same
two knobs, so contention sweeps are comparable across contract types and
deployment shapes:

* ``zipf_s`` — a Zipf base distribution (``1/rank^s``), the heavy-tailed
  account popularity measured on real ERC20 traffic (Victor & Lüders [27],
  cited by the paper);
* ``hotspot_fraction`` / ``hotspot_count`` — an overlay routing that
  fraction of all draws uniformly into the first ``hotspot_count`` indices,
  the exchange-wallet pattern.

All draws are made through a caller-supplied seeded ``random.Random``, so
every workload stays deterministic per seed.
"""

from __future__ import annotations

import random

from repro.errors import InvalidArgumentError


def validate_skew(
    hotspot_fraction: float, hotspot_count: int, count: int
) -> None:
    """Shared validation of the hot-spot skew knobs."""
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise InvalidArgumentError("hotspot_fraction must be in [0, 1]")
    if not 1 <= hotspot_count <= count:
        raise InvalidArgumentError(
            f"hot-spot size must be in [1, {count}], got {hotspot_count}"
        )


def zipf_weights(count: int, s: float) -> list[float]:
    """Normalized Zipf rank weights (``1/rank^s``) over ``count`` items."""
    weights = [1.0 / ((rank + 1) ** s) for rank in range(count)]
    total = sum(weights)
    return [weight / total for weight in weights]


def skewed_index(
    rng: random.Random,
    count: int,
    weights: list[float] | None,
    hotspot_fraction: float,
    hotspot_count: int,
) -> int:
    """One index draw under the shared skew model: a hot-spot overlay over
    either a uniform or Zipf base distribution."""
    if hotspot_fraction > 0 and rng.random() < hotspot_fraction:
        return rng.randrange(hotspot_count)
    if weights is None:
        return rng.randrange(count)
    return rng.choices(range(count), weights=weights)[0]
