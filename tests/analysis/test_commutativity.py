"""Tests for the commutativity analyzer (Theorem 3's case analysis)."""

from __future__ import annotations

from repro.analysis.commutativity import (
    Invocation,
    PairKind,
    analyze_pair,
    commutes,
    conflict_matrix,
    conflicting_pairs,
    erc20_case_label,
)
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import op


def inv(pid: int, operation) -> Invocation:
    return Invocation(pid, operation)


class TestBaseCases:
    """The pairs Theorem 3 dismisses before its case enumeration."""

    def setup_method(self):
        self.token = ERC20TokenType(4, total_supply=0)
        # Rich state: two funded accounts, two spenders on account 0.
        self.state = TokenState.create(
            [10, 10, 0, 0], {(0, 2): 10, (0, 3): 10}
        )

    def test_read_only_pairs(self):
        analysis = analyze_pair(
            self.token,
            self.state,
            inv(1, op("balanceOf", 0)),
            inv(2, op("transferFrom", 0, 1, 5)),
        )
        assert analysis.kind in (PairKind.READ_ONLY, PairKind.COMMUTE)

    def test_approve_approve_commute(self):
        assert commutes(
            self.token,
            self.state,
            inv(0, op("approve", 2, 7)),
            inv(1, op("approve", 3, 7)),
        )

    def test_approve_transfer_commute(self):
        assert commutes(
            self.token,
            self.state,
            inv(0, op("approve", 2, 7)),
            inv(1, op("transfer", 2, 5)),
        )

    def test_transfers_from_distinct_accounts_commute(self):
        assert commutes(
            self.token,
            self.state,
            inv(0, op("transfer", 2, 5)),
            inv(1, op("transfer", 3, 5)),
        )


class TestCase1TransferTransfer:
    """Case 1: two transfer invocations conflict only when one funds the
    other's otherwise-failing transfer."""

    def setup_method(self):
        self.token = ERC20TokenType(3, total_supply=0)

    def test_funding_conflict(self):
        # p0 sends 5 to p1; p1's transfer of 5 only succeeds after it.
        state = TokenState.create([5, 0, 0])
        analysis = analyze_pair(
            self.token,
            state,
            inv(0, op("transfer", 1, 5)),
            inv(1, op("transfer", 2, 5)),
        )
        # The orders differ, but p1's transfer is read-only (fails) when
        # first: the proof treats this as the read-only case.
        assert analysis.kind is PairKind.READ_ONLY
        assert not analysis.states_equal

    def test_affordable_transfers_commute(self):
        state = TokenState.create([5, 5, 0])
        assert commutes(
            self.token,
            state,
            inv(0, op("transfer", 1, 2)),
            inv(1, op("transfer", 2, 2)),
        )


class TestCase2TransferFromTransferFrom:
    """Case 2: the genuine conflict — two enabled spenders racing on one
    account whose balance covers only one transfer."""

    def setup_method(self):
        self.token = ERC20TokenType(4, total_supply=0)

    def test_same_source_race_conflicts(self):
        state = TokenState.create([10, 0, 0, 0], {(0, 2): 10, (0, 3): 10})
        analysis = analyze_pair(
            self.token,
            state,
            inv(2, op("transferFrom", 0, 1, 10)),
            inv(3, op("transferFrom", 0, 1, 10)),
        )
        assert analysis.kind is PairKind.CONFLICT
        assert analysis.responses_fs == (True, False)
        assert analysis.responses_sf == (False, True)

    def test_different_sources_commute(self):
        state = TokenState.create([10, 10, 0, 0], {(0, 2): 10, (1, 3): 10})
        assert commutes(
            self.token,
            state,
            inv(2, op("transferFrom", 0, 2, 5)),
            inv(3, op("transferFrom", 1, 3, 5)),
        )

    def test_sufficient_balance_commutes(self):
        state = TokenState.create([10, 0, 0, 0], {(0, 2): 5, (0, 3): 5})
        assert commutes(
            self.token,
            state,
            inv(2, op("transferFrom", 0, 1, 5)),
            inv(3, op("transferFrom", 0, 1, 5)),
        )

    def test_non_enabled_spender_cannot_conflict(self):
        # The proof's p_w argument: a process outside σ cannot conflict — its
        # failing transferFrom is equivalent to a read-only step (here it even
        # commutes outright with the enabled spender's transfer).
        state = TokenState.create([10, 0, 0, 0], {(0, 2): 10})
        analysis = analyze_pair(
            self.token,
            state,
            inv(3, op("transferFrom", 0, 3, 10)),  # p3 has no allowance
            inv(2, op("transferFrom", 0, 2, 10)),
        )
        assert analysis.kind is not PairKind.CONFLICT
        assert self.token.is_read_only(state, 3, op("transferFrom", 0, 3, 10))


class TestCase3TransferVsTransferFrom:
    def setup_method(self):
        self.token = ERC20TokenType(3, total_supply=0)

    def test_same_source_race_conflicts(self):
        state = TokenState.create([10, 0, 0], {(0, 2): 10})
        analysis = analyze_pair(
            self.token,
            state,
            inv(0, op("transfer", 1, 10)),
            inv(2, op("transferFrom", 0, 1, 10)),
        )
        assert analysis.kind is PairKind.CONFLICT

    def test_other_source_commutes(self):
        state = TokenState.create([10, 10, 0], {(1, 2): 10})
        assert commutes(
            self.token,
            state,
            inv(0, op("transfer", 2, 5)),
            inv(2, op("transferFrom", 1, 2, 5)),
        )


class TestCase4ApproveVsTransferFrom:
    def setup_method(self):
        self.token = ERC20TokenType(3, total_supply=0)

    def test_approve_enabling_pending_spender_conflicts(self):
        # p2 not yet enabled; p0's approve hands it the allowance: the
        # transferFrom succeeds only after the approve.
        state = TokenState.create([10, 0, 0])
        analysis = analyze_pair(
            self.token,
            state,
            inv(0, op("approve", 2, 10)),
            inv(2, op("transferFrom", 0, 1, 10)),
        )
        # transferFrom before approve is read-only (fails): the proof's
        # first sub-case.
        assert analysis.kind is PairKind.READ_ONLY

    def test_approve_on_already_enabled_spender_conflicts(self):
        # The proof's second sub-case: p2 already enabled; the two orders
        # genuinely differ in final state (allowance accounting).
        state = TokenState.create([10, 0, 0], {(0, 2): 10})
        analysis = analyze_pair(
            self.token,
            state,
            inv(0, op("approve", 2, 3)),
            inv(2, op("transferFrom", 0, 1, 10)),
        )
        assert analysis.kind is PairKind.CONFLICT
        assert not analysis.states_equal

    def test_approve_for_other_account_commutes(self):
        state = TokenState.create([10, 10, 0], {(1, 2): 10})
        assert commutes(
            self.token,
            state,
            inv(0, op("approve", 2, 3)),
            inv(2, op("transferFrom", 1, 0, 5)),
        )


class TestMatrix:
    def test_conflict_matrix_shape(self):
        token = ERC20TokenType(3, total_supply=0)
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        invocations = [
            inv(0, op("transfer", 1, 10)),
            inv(1, op("transferFrom", 0, 1, 10)),
            inv(2, op("transferFrom", 0, 2, 10)),
            inv(1, op("balanceOf", 0)),
        ]
        matrix = conflict_matrix(token, state, invocations)
        assert len(matrix) == 6  # C(4, 2)

    def test_conflicts_only_on_synchronization_account_races(self):
        # The paper's punchline: every conflicting pair involves two enabled
        # spenders of the SAME account.
        token = ERC20TokenType(3, total_supply=0)
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        invocations = [
            inv(0, op("transfer", 1, 10)),
            inv(1, op("transferFrom", 0, 1, 10)),
            inv(2, op("transferFrom", 0, 2, 10)),
            inv(1, op("balanceOf", 0)),
            inv(2, op("approve", 1, 5)),
        ]
        conflicts = conflicting_pairs(token, state, invocations)
        assert conflicts, "the races must be detected"
        spenders = {0, 1, 2}
        for analysis in conflicts:
            names = {
                analysis.first.operation.name,
                analysis.second.operation.name,
            }
            assert names <= {"transfer", "transferFrom"}
            assert analysis.first.pid in spenders
            assert analysis.second.pid in spenders


class TestCaseLabels:
    def test_labels(self):
        assert "Case 1" in erc20_case_label(
            inv(0, op("transfer", 1, 1)), inv(1, op("transfer", 0, 1))
        )
        assert "Case 2" in erc20_case_label(
            inv(0, op("transferFrom", 0, 1, 1)),
            inv(1, op("transferFrom", 0, 1, 1)),
        )
        assert "Case 3" in erc20_case_label(
            inv(0, op("transfer", 1, 1)), inv(1, op("transferFrom", 0, 1, 1))
        )
        assert "Case 4" in erc20_case_label(
            inv(0, op("approve", 1, 1)), inv(1, op("transferFrom", 0, 1, 1))
        )
        assert "read-only" in erc20_case_label(
            inv(0, op("balanceOf", 0)), inv(1, op("transfer", 0, 1))
        )
        assert "commuting" in erc20_case_label(
            inv(0, op("approve", 1, 1)), inv(1, op("approve", 0, 1))
        )
