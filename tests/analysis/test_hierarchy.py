"""Tests for the consensus-hierarchy registry."""

from __future__ import annotations

import math

import pytest

from repro.analysis.hierarchy import (
    KNOWN_HIERARCHY,
    kat_consensus_number,
    token_consensus_number,
    token_consensus_number_bounds,
)
from repro.analysis.partition import make_synchronization_state
from repro.objects.erc20 import TokenState


class TestKAT:
    def test_parametric(self):
        assert kat_consensus_number(1) == 1
        assert kat_consensus_number(5) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            kat_consensus_number(0)


class TestTokenConsensusNumber:
    def test_deployed_state_has_cn_1(self):
        # The paper's conclusion: a freshly deployed ERC20 token needs no
        # synchronization at all.
        state = TokenState.deploy(5, 100)
        assert token_consensus_number(state) == 1

    def test_synchronization_state_has_cn_k(self):
        for k in (2, 3, 4):
            state = make_synchronization_state(k + 1, k)
            assert token_consensus_number(state) == k
            assert token_consensus_number_bounds(state) == (k, k)

    def test_erratum_state_has_open_gap(self):
        # Literal-U-only states certify lower bound 1 but upper bound 2.
        state = TokenState.create([10, 0], {(0, 1): 11})
        lower, upper = token_consensus_number_bounds(state)
        assert lower == 1
        assert upper == 2

    def test_dynamicity(self):
        # The headline result: the consensus number changes with the state.
        state = TokenState.deploy(4, 10)
        assert token_consensus_number(state) == 1
        approved = state.with_allowance(0, 1, 10).with_allowance(0, 2, 10)
        assert token_consensus_number(approved) == 3


class TestRegistry:
    def test_register_entry(self):
        entries = {e.object_family: e for e in KNOWN_HIERARCHY}
        assert entries["atomic register"].consensus_number == 1

    def test_consensus_is_universal(self):
        entries = {e.object_family: e for e in KNOWN_HIERARCHY}
        assert entries["consensus object"].consensus_number == math.inf

    def test_single_owner_at_is_level_1(self):
        entries = {e.object_family: e for e in KNOWN_HIERARCHY}
        assert entries["asset transfer (single-owner)"].consensus_number == 1
