"""Tests for the Q_k partition, predicate U, and synchronization states S_k
(Eqs. 11, 13, 14)."""

from __future__ import annotations

import pytest

from repro.analysis.partition import (
    classify,
    in_partition_cell,
    is_synchronization_state,
    make_synchronization_state,
    synchronization_accounts,
    synchronization_level,
    unique_transfer,
    unique_transfer_strict,
)
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import TokenState


class TestSynchronizationLevel:
    def test_deployed_state_is_level_1(self):
        state = TokenState.deploy(4, 10)
        assert synchronization_level(state) == 1
        assert in_partition_cell(state, 1)

    def test_level_counts_max_account(self):
        state = TokenState.create(
            [5, 5, 0, 0], {(0, 1): 1, (1, 0): 1, (1, 2): 1}
        )
        assert synchronization_level(state) == 3

    def test_partition_is_exclusive(self):
        state = TokenState.create([5, 0], {(0, 1): 1})
        assert in_partition_cell(state, 2)
        assert not in_partition_cell(state, 1)

    def test_k_must_be_positive(self):
        with pytest.raises(InvalidArgumentError):
            in_partition_cell(TokenState.create([1]), 0)

    def test_partition_covers_every_state(self):
        # Every state belongs to exactly one cell (Eq. 11 defines a partition).
        states = [
            TokenState.deploy(3, 10),
            TokenState.create([5, 0, 0], {(0, 1): 2}),
            TokenState.create([5, 0, 0], {(0, 1): 2, (0, 2): 2}),
            TokenState.create([0, 0, 0], {(0, 1): 2, (0, 2): 2}),
        ]
        for state in states:
            cells = [k for k in range(1, 4) if in_partition_cell(state, k)]
            assert len(cells) == 1


class TestPredicateU:
    def test_requires_positive_balance(self):
        state = TokenState.create([0, 0], {(0, 1): 1})
        assert not unique_transfer(state, 0)

    def test_two_spenders_always_satisfy_literal_u(self):
        # |σ| <= 2 branch of Eq. 13.
        state = TokenState.create([10, 0], {(0, 1): 99})
        assert unique_transfer(state, 0)

    def test_pairwise_sum_condition(self):
        # Three spenders: allowances must pairwise exceed the balance.
        good = TokenState.create([10, 0, 0], {(0, 1): 6, (0, 2): 6})
        assert unique_transfer(good, 0)
        bad = TokenState.create([10, 0, 0], {(0, 1): 4, (0, 2): 6})
        assert not unique_transfer(bad, 0)

    def test_strict_additionally_bounds_allowances(self):
        # Literal U holds but a spender's allowance exceeds the balance: the
        # erratum case — strict U* must reject it.
        state = TokenState.create([10, 0], {(0, 1): 11})
        assert unique_transfer(state, 0)
        assert not unique_transfer_strict(state, 0)

    def test_strict_holds_for_equal_allowances(self):
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        assert unique_transfer_strict(state, 0)

    def test_strict_implies_literal(self):
        states = [
            TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10}),
            TokenState.create([3, 0, 0], {(0, 1): 2, (0, 2): 2}),
            TokenState.create([5, 0], {(0, 1): 5}),
        ]
        for state in states:
            if unique_transfer_strict(state, 0):
                assert unique_transfer(state, 0)


class TestSynchronizationStates:
    def test_membership(self):
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        assert is_synchronization_state(state, 3)
        assert not is_synchronization_state(state, 2)

    def test_witness_accounts(self):
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        assert synchronization_accounts(state, 3) == (0,)

    def test_literal_vs_strict_membership(self):
        state = TokenState.create([10, 0], {(0, 1): 11})
        assert is_synchronization_state(state, 2, strict=False)
        assert not is_synchronization_state(state, 2, strict=True)

    def test_deployed_state_is_s1(self):
        state = TokenState.deploy(3, 10)
        assert is_synchronization_state(state, 1)


class TestMakeSynchronizationState:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_construction_lands_in_sk(self, k):
        state = make_synchronization_state(max(k, 2) + 1, k)
        assert is_synchronization_state(state, k, strict=True)
        assert synchronization_level(state) == k

    def test_custom_witness_account(self):
        state = make_synchronization_state(4, 3, account=2)
        assert synchronization_accounts(state, 3) == (2,)

    def test_custom_balance(self):
        state = make_synchronization_state(4, 2, balance=7)
        assert state.balance(0) == 7

    def test_invalid_k_rejected(self):
        with pytest.raises(InvalidArgumentError):
            make_synchronization_state(3, 4)

    def test_zero_balance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            make_synchronization_state(3, 2, balance=0)


class TestClassify:
    def test_full_classification(self):
        state = TokenState.create([10, 0, 0], {(0, 1): 10, (0, 2): 10})
        result = classify(state)
        assert result.level == 3
        assert result.sync_level_strict == 3
        assert result.sync_level_literal == 3
        assert result.witnesses == (0,)

    def test_erratum_state_classification(self):
        # Account 0 has two spenders but fails U* (allowance 11 > balance 10);
        # account 1 is empty, so no strict witness exists at any level.
        state = TokenState.create([10, 0], {(0, 1): 11})
        result = classify(state)
        assert result.level == 2
        assert result.sync_level_literal == 2
        assert result.sync_level_strict == 0
        assert result.witnesses == ()

    def test_deployed(self):
        result = classify(TokenState.deploy(3, 10))
        assert result.level == 1
        assert result.sync_level_strict == 1
        assert result.witnesses == (0,)
