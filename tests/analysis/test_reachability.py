"""Tests for level reachability (Eq. 12) and escalation plans."""

from __future__ import annotations

from repro.analysis.partition import (
    is_synchronization_state,
    synchronization_level,
)
from repro.analysis.reachability import (
    escalation_plan,
    level_trajectory,
    raising_approvals,
    verify_level_change_ops,
)
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import op


class TestRaisingApprovals:
    def test_eq12_witness_exists_from_funded_state(self):
        token = ERC20TokenType(3, total_supply=10)
        state = token.initial_state()
        witnesses = raising_approvals(state)
        assert witnesses, "Eq. 12 guarantees a raising approve from Q_1"
        witness = witnesses[0]
        successor, result = token.apply(state, witness.pid, witness.operation)
        assert result is True
        assert (
            synchronization_level(successor)
            == synchronization_level(state) + 1
        )

    def test_all_witnesses_raise_the_level(self):
        token = ERC20TokenType(4, total_supply=10)
        state, _ = token.run([(0, op("approve", 1, 5))])
        for witness in raising_approvals(state):
            successor, _ = token.apply(state, witness.pid, witness.operation)
            assert synchronization_level(successor) == 3

    def test_only_owner_issues_witness(self):
        state = TokenState.deploy(3, 10)
        for witness in raising_approvals(state):
            assert witness.pid == witness.account  # ω identity

    def test_no_witness_from_empty_accounts(self):
        # All balances zero: no approve can raise the level (Eq. 10).
        state = TokenState.create([0, 0, 0])
        assert raising_approvals(state) == ()


class TestTrajectories:
    def test_trajectory_length(self):
        token = ERC20TokenType(3, total_supply=10)
        trajectory = level_trajectory(
            token, [(0, op("approve", 1, 5)), (0, op("approve", 2, 5))]
        )
        assert len(trajectory) == 3
        assert [level for level, _ in trajectory] == [1, 2, 3]

    def test_level_decreases_when_allowance_consumed(self):
        token = ERC20TokenType(3, total_supply=10)
        operations = [
            (0, op("approve", 1, 5)),
            (1, op("transferFrom", 0, 1, 5)),
        ]
        trajectory = level_trajectory(token, operations)
        assert [level for level, _ in trajectory] == [1, 2, 1]

    def test_verifier_accepts_legal_executions(self):
        token = ERC20TokenType(3, total_supply=10)
        operations = [
            (0, op("approve", 1, 5)),
            (0, op("transfer", 2, 3)),
            (1, op("transferFrom", 0, 2, 2)),
            (2, op("approve", 0, 1)),
        ]
        assert verify_level_change_ops(token, operations) == []

    def test_verifier_accepts_funding_raises(self):
        # Funding an empty account with latent allowances raises the level via
        # a transfer (the Eq. 10 convention); the checker classifies it as a
        # funding raise, not a violation.
        token = ERC20TokenType(
            3,
            initial_state=TokenState.create([5, 0, 0], {(1, 2): 4}),
        )
        operations = [(0, op("transfer", 1, 2))]
        assert verify_level_change_ops(token, operations) == []


class TestEscalationPlan:
    def test_plan_reaches_sk_from_deployment(self):
        for k in (1, 2, 3, 4):
            token = ERC20TokenType(5, total_supply=k)
            plan = escalation_plan(5, k)
            state, responses = token.run(plan)
            assert all(responses), "every preparation step must succeed"
            assert is_synchronization_state(state, k, strict=True)

    def test_plan_with_non_deployer_witness(self):
        k = 3
        token = ERC20TokenType(5, total_supply=k)
        plan = escalation_plan(5, k, account=2)
        state, responses = token.run(plan)
        assert all(responses)
        assert is_synchronization_state(state, k, strict=True)
        assert state.balance(2) == k

    def test_plan_length_is_minimal(self):
        # k-1 approvals (+1 funding transfer if the witness isn't the deployer).
        assert len(escalation_plan(5, 4)) == 3
        assert len(escalation_plan(5, 4, account=1)) == 4

    def test_every_prefix_failure_blocks_escalation(self):
        # Dropping any approve leaves the state below S_k: the non-wait-free
        # preparation observation (§5.2 before Theorem 3).
        k = 4
        token = ERC20TokenType(5, total_supply=k)
        plan = escalation_plan(5, k)
        for skip in range(len(plan)):
            partial = [step for i, step in enumerate(plan) if i != skip]
            state, _ = token.run(partial)
            assert not is_synchronization_state(state, k, strict=True)
