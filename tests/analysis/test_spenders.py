"""Tests for enabled-spender sets σ_q (Eq. 10)."""

from __future__ import annotations

import pytest

from repro.analysis.spenders import (
    accounts_with_spender_count,
    enabled_spenders,
    max_spenders,
    potential_level,
    potential_spenders,
    spender_map,
)
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import TokenState


class TestEnabledSpenders:
    def test_owner_always_enabled(self):
        state = TokenState.create([5, 0, 0])
        assert enabled_spenders(state, 0) == {0}

    def test_positive_allowance_enables(self):
        state = TokenState.create([5, 0, 0], {(0, 2): 3})
        assert enabled_spenders(state, 0) == {0, 2}

    def test_zero_allowance_does_not_enable(self):
        state = TokenState.create([5, 0, 0], {(0, 2): 0})
        assert enabled_spenders(state, 0) == {0}

    def test_zero_balance_convention(self):
        # Eq. 10 convention: an empty account has only its owner enabled,
        # even with positive allowances outstanding.
        state = TokenState.create([0, 5, 0], {(0, 2): 3})
        assert enabled_spenders(state, 0) == {0}

    def test_funding_restores_spenders(self):
        state = TokenState.create([0, 5, 0], {(0, 2): 3})
        funded = state.with_transfer(1, 0, 1)
        assert enabled_spenders(funded, 0) == {0, 2}

    def test_self_allowance_adds_nothing(self):
        state = TokenState.create([5, 0], {(0, 0): 3})
        assert enabled_spenders(state, 0) == {0}

    def test_unknown_account_raises(self):
        with pytest.raises(InvalidArgumentError):
            enabled_spenders(TokenState.create([1]), 4)


class TestSpenderMap:
    def test_map_covers_all_accounts(self):
        state = TokenState.create([5, 5, 0], {(0, 1): 1, (1, 0): 1, (1, 2): 1})
        mapping = spender_map(state)
        assert mapping == ({0, 1}, {0, 1, 2}, {2})

    def test_max_spenders(self):
        state = TokenState.create([5, 5, 0], {(1, 0): 1, (1, 2): 1})
        assert max_spenders(state) == 3

    def test_accounts_with_count(self):
        state = TokenState.create([5, 5, 0], {(0, 1): 1, (1, 0): 1, (1, 2): 1})
        assert accounts_with_spender_count(state, 2) == (0,)
        assert accounts_with_spender_count(state, 3) == (1,)
        assert accounts_with_spender_count(state, 1) == (2,)


class TestPotentialSpenders:
    def test_ignores_zero_balance_convention(self):
        state = TokenState.create([0, 5, 0], {(0, 2): 3})
        assert potential_spenders(state, 0) == {0, 2}
        assert enabled_spenders(state, 0) == {0}

    def test_coincides_when_funded(self):
        state = TokenState.create([5, 0, 0], {(0, 2): 3})
        assert potential_spenders(state, 0) == enabled_spenders(state, 0)

    def test_potential_level_bounds_sigma_level(self):
        state = TokenState.create([0, 5, 0], {(0, 1): 1, (0, 2): 1})
        assert potential_level(state) == 3
        assert max_spenders(state) <= potential_level(state)
