"""Tests for valency analysis and critical-state search."""

from __future__ import annotations

import pytest

from repro.analysis.valency import ValencyAnalyzer
from repro.protocols.kat_consensus import kat_consensus_system
from repro.protocols.register_consensus import doomed_register_system
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.scheduler import StepAction


class TestAlgorithm1Valency:
    @pytest.fixture
    def analyzer(self) -> ValencyAnalyzer:
        return ValencyAnalyzer(lambda: algorithm1_system({0: 0, 1: 1}))

    def test_initial_configuration_bivalent(self, analyzer):
        valence = analyzer.valence(())
        assert valence.is_bivalent
        assert valence.outcomes == {0, 1}

    def test_solo_run_is_univalent(self, analyzer):
        # After p0 completes its register write and its winning transfer,
        # only p0's value remains reachable.
        prefix = (StepAction(0), StepAction(0))
        valence = analyzer.valence(prefix)
        assert valence.is_univalent
        assert valence.outcomes == {0}

    def test_critical_configuration_is_the_token_race(self, analyzer):
        criticals = analyzer.find_critical_configurations(max_results=5)
        assert criticals, "Herlihy: a critical configuration must exist"
        for critical in criticals:
            assert critical.valence.is_bivalent
            # The pending operations at criticality are the token-object race
            # (transfer by the owner vs transferFrom by the spender) — the
            # very situation Theorem 3's Cases 2/3 analyze.
            pending_ops = " | ".join(critical.pending.values())
            assert "transfer" in pending_ops
            assert all(
                v.is_univalent for v in critical.successor_valences.values()
            )

    def test_successors_decide_the_stepping_process(self, analyzer):
        criticals = analyzer.find_critical_configurations(max_results=1)
        critical = criticals[0]
        for pid, valence in critical.successor_valences.items():
            assert valence.outcomes == {pid}, (
                "after winning the race, the protocol decides the winner's "
                "proposal"
            )


class TestKATValency:
    def test_kat_race_is_the_critical_step(self):
        analyzer = ValencyAnalyzer(lambda: kat_consensus_system({0: 0, 1: 1}))
        assert analyzer.valence(()).is_bivalent
        criticals = analyzer.find_critical_configurations(max_results=2)
        assert criticals
        for critical in criticals:
            pending_ops = " | ".join(critical.pending.values())
            assert "transfer" in pending_ops


class TestDoomedRegisterProtocol:
    def test_register_protocol_cannot_have_clean_critical_state(self):
        # The doomed protocol reaches configurations that *look* critical but
        # decide inconsistently — register steps commute, so the adversary
        # wins.  Concretely: the explorer finds agreement violations.
        from repro.protocols.base import consensus_checks
        from repro.runtime.explorer import ScheduleExplorer

        factory = lambda: doomed_register_system({0: 2, 1: 1})
        explorer = ScheduleExplorer(factory)
        report = explorer.explore(checks=[consensus_checks({0: 2, 1: 1})])
        assert not report.ok
        assert any("agreement" in str(v) for v in report.violations)

    def test_bivalent_initial(self):
        analyzer = ValencyAnalyzer(lambda: doomed_register_system({0: 2, 1: 1}))
        assert analyzer.valence(()).is_bivalent
