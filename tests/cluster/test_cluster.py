"""Unit tests for the cluster's moving parts: shard map, lease protocol,
routing classes (owner-local / lease / escalation), backpressure, stats."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ShardMap,
    TokenCluster,
    owner_local_workload,
)
from repro.engine import BatchExecutor, Mempool
from repro.errors import ClusterError, MempoolFullError
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import op
from repro.workloads import TokenWorkloadGenerator, WorkloadItem

ACCOUNTS = 32


def make_cluster(nodes=4, **kwargs):
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    defaults = dict(num_nodes=nodes, lanes_per_node=4, window=16)
    defaults.update(kwargs)
    return token, TokenCluster(token, **defaults)


def accounts_on_distinct_nodes(cluster) -> tuple[int, int]:
    """Two accounts whose shards different nodes own."""
    owner0 = cluster.shard_map.owner_of(0)
    for account in range(1, ACCOUNTS):
        if cluster.shard_map.owner_of(account) != owner0:
            return 0, account
    raise AssertionError("expected a multi-node ownership split")


def accounts_on_same_node(cluster) -> tuple[int, int]:
    owner0 = cluster.shard_map.owner_of(0)
    for account in range(1, ACCOUNTS):
        if cluster.shard_map.owner_of(account) == owner0:
            return 0, account
    raise AssertionError("expected two accounts on one node")


class TestShardMap:
    def test_initial_ownership_is_balanced_round_robin(self):
        shard_map = ShardMap(16, 4)
        sizes = [len(shard_map.shards_of_node(n)) for n in range(4)]
        assert sizes == [4, 4, 4, 4]
        for account in range(100):
            owner = shard_map.owner_of(account)
            assert owner == shard_map.shard_of(account) % 4

    def test_migrate_moves_lease_and_records_history(self):
        shard_map = ShardMap(8, 2)
        shard = shard_map.shard_of(5)
        old = shard_map.owner_of(5)
        new = 1 - old
        record = shard_map.migrate(shard, new, round_index=3)
        assert shard_map.owner_of(5) == new
        assert record.from_node == old and record.to_node == new
        assert shard_map.migrations == [record]

    def test_migrate_rejects_noop_and_unknown(self):
        shard_map = ShardMap(8, 2)
        with pytest.raises(ClusterError):
            shard_map.migrate(0, shard_map.owner_of_shard(0))
        with pytest.raises(ClusterError):
            shard_map.migrate(99, 0)
        with pytest.raises(ClusterError):
            shard_map.migrate(0, 7)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ClusterError):
            ShardMap(2, 4)
        with pytest.raises(ClusterError):
            ShardMap(4, 0)


class TestOwnerLocalTraffic:
    """The acceptance criterion: owner-local traffic on an N-node cluster
    executes with zero consensus messages and zero lease migrations."""

    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_zero_coordination(self, nodes):
        token, cluster = make_cluster(nodes, window=32)
        items = owner_local_workload(cluster.shard_map, ACCOUNTS, 200, seed=9)
        state, responses, stats = cluster.run_workload(items)
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items]
        )
        assert state == ref_state
        assert responses == ref_responses
        assert stats.escalation_messages == 0
        assert stats.escalated_ops == 0
        assert stats.lease_migrations == 0
        assert stats.lease_messages == 0
        # Overflow spill may shed a few commuting singletons off their home
        # for balance (free — no coordination); everything else stays local.
        assert stats.owner_local_ops + stats.spill_ops == stats.ops_executed
        assert stats.owner_local_rate >= 0.9

    def test_owner_local_messages_are_only_forwards_and_results(self):
        # Unit dispatch (the default) piggybacks the op payloads on the
        # cl_run dispatches — no separate cl_op messages on the wire.
        _, cluster = make_cluster(4, window=32)
        items = owner_local_workload(cluster.shard_map, ACCOUNTS, 100, seed=2)
        cluster.run_workload(items)
        by_type = cluster.network.stats.by_type
        assert set(by_type) == {"cl_run", "cl_result"}
        assert (
            sum(bill.forwards_received for bill in cluster.stats.node_bills)
            == 100
        )

    def test_legacy_wire_format_keeps_per_op_forwards(self):
        # The pre-flip batch path still forwards each op point-to-point —
        # the pinned legacy wire format, one cl_op per operation.
        _, cluster = make_cluster(4, window=32, config=ClusterConfig.legacy())
        items = owner_local_workload(cluster.shard_map, ACCOUNTS, 100, seed=2)
        cluster.run_workload(items)
        by_type = cluster.network.stats.by_type
        assert set(by_type) == {"cl_op", "cl_run", "cl_result"}
        assert by_type["cl_op"] == 100


class TestLeaseProtocol:
    def test_cross_shard_uncontended_chain_migrates_ownership(self):
        token, cluster = make_cluster(4, lease_min_gain=1)
        a, b = accounts_on_distinct_nodes(cluster)
        # a credits b, then b spends: an uncontended cross-shard chain
        # (credit-enables-spend), resolved by a lease handoff — never by
        # consensus.
        cluster.submit(a, op("transfer", b, 3))
        cluster.submit(b, op("transfer", a, 2))
        stats = cluster.run()
        assert stats.lease_migrations >= 1
        assert stats.lease_messages == 3 * stats.lease_migrations
        assert stats.escalation_messages == 0
        moved = {record.shard for record in cluster.shard_map.migrations}
        assert (
            cluster.shard_map.shard_of(a) in moved
            or cluster.shard_map.shard_of(b) in moved
        )
        assert cluster.responses_in_order() == [True, True]
        # The routing view and the nodes' mirrored ownership agree.
        for node in cluster.nodes:
            assert node.owned_shards == set(
                cluster.shard_map.shards_of_node(node.node_id)
            )
        record = cluster.shard_map.migrations[0]
        assert record.from_node != record.to_node
        assert cluster.shard_map.owner_of_shard(record.shard) == record.to_node

    def test_lease_min_gain_suppresses_churn(self):
        _, cluster = make_cluster(4, lease_min_gain=2)
        a, b = accounts_on_distinct_nodes(cluster)
        # A 1-vs-1 split chain names no busier node: co-located without
        # a handoff.
        cluster.submit(a, op("transfer", b, 3))
        cluster.submit(b, op("transfer", a, 2))
        stats = cluster.run()
        assert stats.lease_migrations == 0
        assert cluster.responses_in_order() == [True, True]

    def test_majority_owner_wins_the_lease(self):
        _, cluster = make_cluster(4, lease_min_gain=2, window=8)
        a, b = accounts_on_distinct_nodes(cluster)
        owner_a = cluster.shard_map.owner_of(a)
        # Two ops anchored at a, one at b: a's owner is the busier node,
        # so b's shard migrates to it.
        cluster.submit(a, op("transfer", b, 1))
        cluster.submit(a, op("transfer", b, 1))
        cluster.submit(b, op("transfer", a, 1))
        stats = cluster.run()
        assert stats.lease_migrations == 1
        record = cluster.shard_map.migrations[0]
        assert record.to_node == owner_a
        assert cluster.shard_map.owner_of(b) == owner_a


class TestEscalation:
    def test_contended_cross_node_chain_escalates(self):
        token, cluster = make_cluster(4, window=8)
        a, b = accounts_on_distinct_nodes(cluster)
        c = (max(a, b) + 1) % ACCOUNTS
        # Chain: a credits b (anchor a) — uncontended link into the race on
        # b's account between owner-b and spender-a (two distinct processes
        # contending on bal(b)): contended members anchored at b, chain
        # spans owners of a and b.
        items = [
            WorkloadItem(a, op("transfer", b, 2)),
            WorkloadItem(b, op("approve", a, 5)),
            WorkloadItem(a, op("transferFrom", b, c, 1)),
            WorkloadItem(b, op("transfer", c, 1)),
        ]
        state, responses, stats = cluster.run_workload(items)
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items]
        )
        assert state == ref_state
        assert responses == ref_responses
        assert stats.escalated_ops > 0
        assert stats.escalation_messages > 0
        assert stats.escalation_time > 0

    def test_same_owner_contention_is_sequenced_locally(self):
        """The same race confined to one owner's shards never escalates —
        ownership is exactly the right to sequence it for free."""
        token, cluster = make_cluster(4, window=8)
        a, b = accounts_on_same_node(cluster)
        c = (max(a, b) + 1) % ACCOUNTS
        items = [
            WorkloadItem(a, op("transfer", b, 2)),
            WorkloadItem(b, op("approve", a, 5)),
            WorkloadItem(a, op("transferFrom", b, c, 1)),
            WorkloadItem(b, op("transfer", c, 1)),
        ]
        state, responses, stats = cluster.run_workload(items)
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items]
        )
        assert state == ref_state
        assert responses == ref_responses
        assert stats.escalated_ops == 0
        assert stats.escalation_messages == 0


class TestBackpressure:
    def test_bounded_mempool_raises_typed_rejection(self):
        pool = Mempool(capacity=2)
        pool.submit(0, op("balanceOf", 0))
        pool.submit(1, op("balanceOf", 1))
        with pytest.raises(MempoolFullError):
            pool.submit(2, op("balanceOf", 2))
        assert pool.rejected == 1
        assert pool.submitted == 2
        # Draining frees capacity again.
        pool.pop_window(2)
        pool.submit(2, op("balanceOf", 2))
        assert pool.submitted == 3

    def test_engine_surfaces_drop_counter(self):
        token = ERC20TokenType(8, total_supply=80)
        engine = BatchExecutor(token, num_lanes=2, window=4, mempool_capacity=4)
        for pid in range(4):
            engine.submit(pid, op("balanceOf", pid))
        with pytest.raises(MempoolFullError):
            engine.submit(4, op("balanceOf", 4))
        stats = engine.run()
        assert stats.rejected_ops == 1
        assert stats.as_dict()["rejected_ops"] == 1

    def test_engine_run_workload_paces_instead_of_rejecting(self):
        """A bounded engine executes rounds to make room: arbitrarily long
        workloads flow through a small pool, with zero drops."""
        token = ERC20TokenType(8, total_supply=80)
        engine = BatchExecutor(token, num_lanes=2, window=4, mempool_capacity=6)
        items = TokenWorkloadGenerator(8, seed=3).generate(40)
        state, responses, stats = engine.run_workload(items)
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items]
        )
        assert state == ref_state
        assert responses == ref_responses
        assert stats.ops_executed == 40
        assert stats.rejected_ops == 0

    def test_cluster_router_sheds_load_and_counts_drops(self):
        token, cluster = make_cluster(2, mempool_capacity=8)
        items = TokenWorkloadGenerator(ACCOUNTS, seed=4).generate(20)
        state, responses, stats = cluster.run_workload(items)
        assert stats.dropped_ops == 12
        assert len(responses) == 8
        # The admitted prefix matches the sequential run of that prefix.
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items[:8]]
        )
        assert state == ref_state
        assert responses == ref_responses

    def test_rejects_bad_capacity(self):
        with pytest.raises(Exception):
            Mempool(capacity=0)


class TestClusterStats:
    def test_round_trip_and_invariants(self):
        token, cluster = make_cluster(4, window=16)
        items = TokenWorkloadGenerator(ACCOUNTS, seed=6).generate(150)
        _, _, stats = cluster.run_workload(items)
        snapshot = stats.as_dict()
        assert snapshot["ops_executed"] == 150
        assert snapshot["rounds"] == len(stats.round_log)
        assert sum(b.ops_executed for b in stats.node_bills) == 150
        assert snapshot["makespan"] > 0
        assert snapshot["throughput"] == pytest.approx(
            150 / snapshot["makespan"]
        )
        assert 0.0 <= snapshot["owner_local_rate"] <= 1.0
        assert snapshot["cluster_messages"] == (
            cluster.network.stats.messages_sent
        )
        assert snapshot["load_imbalance"] >= 1.0
        assert len(snapshot["node_bills"]) == 4

    def test_hot_shard_burst_is_split_across_nodes(self):
        _, cluster = make_cluster(4, window=40)
        for i in range(40):
            cluster.submit(i % ACCOUNTS, op("balanceOf", 0))
        stats = cluster.run()
        assert stats.hot_split_ops > 0
        used = [b for b in stats.node_bills if b.ops_executed]
        assert len(used) > 1  # the burst did not pin to one node

    def test_determinism_same_seed_same_everything(self):
        _, c1 = make_cluster(4, seed=11)
        _, c2 = make_cluster(4, seed=11)
        items = TokenWorkloadGenerator(ACCOUNTS, seed=11).generate(120)
        s1, r1, st1 = c1.run_workload(items)
        s2, r2, st2 = c2.run_workload(items)
        assert (s1, r1) == (s2, r2)
        assert st1.as_dict() == st2.as_dict()


class TestConfigValidation:
    def test_rejects_bad_cluster_config(self):
        token = ERC20TokenType(4, total_supply=40)
        with pytest.raises(ClusterError):
            TokenCluster(token, num_nodes=0)
        with pytest.raises(ClusterError):
            TokenCluster(token, num_nodes=2, window=0)
        with pytest.raises(ClusterError):
            TokenCluster(token, num_nodes=4, num_shards=2)

    def test_owner_local_workload_needs_a_transfer_pool(self):
        shard_map = ShardMap(16, 16)
        with pytest.raises(ClusterError):
            owner_local_workload(shard_map, 1, 10)
