"""Component-granular dispatch + op-granular node planning: cluster tests.

Machine-checked guarantees of ``TokenCluster(dag_scheduling=True)``:

* **serial equivalence** — final state and every response equal a plain
  sequential execution in submission order, for any node count, shard
  geometry, pipeline depth, and lease schedule (units interleave on the
  nodes' lane timelines, but conflicting cross-round units are dispatch-
  gated and units of one round are distinct components);
* **chain-atomic identity** — ``ClusterConfig.legacy()`` (equivalently
  the explicit pre-flip kwargs) is the historical cluster bit for bit,
  stats dictionaries included;
* **granularity** — the pipelined router really fans a round out as
  per-component ``cl_run`` units, and the nodes' bills carry the DAG
  structure metrics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, TokenCluster
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadMix,
)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}

ACCOUNTS = 24


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def make_items(mix, ops, seed=17, **kwargs):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=seed, mix=mix, **kwargs
    ).generate(ops)


def serial_reference(items):
    return make_token().run([(item.pid, item.operation) for item in items])


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("depth", (1, 3))
    def test_state_and_responses_match_spec(self, mix_name, depth):
        items = make_items(MIXES[mix_name], 300)
        ref_state, ref_responses = serial_reference(items)
        cluster = TokenCluster(
            make_token(),
            num_nodes=4,
            lanes_per_node=4,
            window=48,
            pipeline_depth=depth,
            dag_scheduling=True,
        )
        state, responses, _ = cluster.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(1, 6),
        depth=st.integers(1, 4),
        shards=st.sampled_from([8, 16, 32]),
        window=st.integers(8, 48),
    )
    def test_hypothesis_sweep(self, seed, nodes, depth, shards, window):
        items = make_items(
            SPENDER_HEAVY_MIX, 150, seed=seed,
            hotspot_fraction=0.3, hotspot_accounts=2,
        )
        ref_state, ref_responses = serial_reference(items)
        cluster = TokenCluster(
            make_token(),
            num_nodes=nodes,
            lanes_per_node=4,
            window=window,
            num_shards=shards,
            seed=seed,
            pipeline_depth=depth,
            dag_scheduling=True,
        )
        state, responses, _ = cluster.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    def test_lease_migrations_coexist_with_units(self):
        # Explicit cross-shard uncontended chains (credit-enables-spend
        # across owners) in several pipelined windows: the lease handoff
        # must gate exactly its own unit, never the round's other units.
        cluster = TokenCluster(
            make_token(),
            num_nodes=4,
            lanes_per_node=4,
            window=8,
            lease_min_gain=1,
            pipeline_depth=3,
            dag_scheduling=True,
        )
        owner0 = cluster.shard_map.owner_of(0)
        foreign = [
            a for a in range(1, ACCOUNTS)
            if cluster.shard_map.owner_of(a) != owner0
        ]
        ops = []
        for k, account in enumerate(foreign[:6]):
            ops.append((0, op("transfer", account, 3)))
            ops.append((account, op("transfer", 0, 2)))
            ops.append((k + 10, op("transfer", k + 11, 1)))
        ref_state, ref_responses = make_token().run(ops)
        for pid, operation in ops:
            cluster.submit(pid, operation)
        stats = cluster.run()
        assert cluster.state == ref_state
        assert cluster.responses_in_order() == ref_responses
        assert stats.lease_migrations > 0
        assert stats.units_dispatched > 0

    def test_team_lanes_compose_with_units(self):
        items = make_items(APPROVAL_HEAVY_MIX, 300, seed=13, spender_pool=4)
        ref_state, ref_responses = serial_reference(items)
        cluster = TokenCluster(
            make_token(),
            num_nodes=6,
            lanes_per_node=4,
            window=48,
            pipeline_depth=3,
            team_threshold=4,
            dag_scheduling=True,
        )
        state, responses, stats = cluster.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses


class TestIdentity:
    @pytest.mark.parametrize("depth", (1, 3))
    def test_dag_off_is_the_historical_cluster(self, depth):
        # The legacy() preset and the explicit pre-flip kwargs are the
        # same cluster bit for bit at any pipeline depth.
        items = make_items(APPROVAL_HEAVY_MIX, 300)
        default = TokenCluster(
            make_token(),
            ClusterConfig.legacy(
                num_nodes=4, lanes_per_node=4, window=48,
                pipeline_depth=depth,
            ),
        )
        explicit = TokenCluster(
            make_token(), num_nodes=4, lanes_per_node=4, window=48,
            pipeline_depth=depth, dag_scheduling=False,
            team_threshold=0, lane_ttl=None,
        )
        d_state, d_responses, d_stats = default.run_workload(items)
        e_state, e_responses, e_stats = explicit.run_workload(items)
        assert e_state == d_state
        assert e_responses == d_responses
        d_dict, e_dict = d_stats.as_dict(), e_stats.as_dict()
        d_dict.pop("dag_scheduling"), e_dict.pop("dag_scheduling")
        assert e_dict == d_dict
        assert e_stats.units_dispatched == 0
        assert e_stats.dag_speedup == 1.0

    def test_barrier_depth_keeps_batch_dispatch(self):
        # dag_scheduling at depth 1 changes node planning (op-granular),
        # never the dispatch granularity — there is nothing to overlap in
        # a quiescing round.
        items = make_items(APPROVAL_HEAVY_MIX, 200)
        cluster = TokenCluster(
            make_token(), num_nodes=4, lanes_per_node=4, window=48,
            pipeline_depth=1, dag_scheduling=True,
        )
        cluster.run_workload(items)
        assert cluster.router.unit_dispatch is False
        assert cluster.stats.units_dispatched == 0
        assert cluster.stats.dag_chain_ops > 0


class TestGranularity:
    def test_units_fan_out_per_component(self):
        items = make_items(APPROVAL_HEAVY_MIX, 300)
        cluster = TokenCluster(
            make_token(), num_nodes=4, lanes_per_node=4, window=48,
            pipeline_depth=3, dag_scheduling=True,
        )
        _, _, stats = cluster.run_workload(items)
        assert cluster.router.unit_dispatch is True
        # More units than rounds: rounds really split into components.
        assert stats.units_dispatched > stats.rounds
        assert sum(bill.units_executed for bill in stats.node_bills) == (
            stats.units_dispatched
        )

    def test_node_bills_carry_dag_structure(self):
        items = make_items(APPROVAL_HEAVY_MIX, 300)
        cluster = TokenCluster(
            make_token(), num_nodes=4, lanes_per_node=4, window=48,
            pipeline_depth=3, dag_scheduling=True,
        )
        _, _, stats = cluster.run_workload(items)
        assert stats.dag_chain_ops >= stats.dag_critical_ops > 0
        assert stats.dag_speedup >= 1.0
        assert stats.max_dag_width >= 2

    def test_unit_execution_scales_with_op_cost(self):
        # The persistent lane timeline must charge op_cost per op, like
        # the batch path — not unit cost 1.
        items = make_items(APPROVAL_HEAVY_MIX, 200)
        ref_state, ref_responses = serial_reference(items)
        makespans = {}
        for op_cost in (1.0, 4.0):
            cluster = TokenCluster(
                make_token(), num_nodes=4, lanes_per_node=4, window=48,
                op_cost=op_cost, pipeline_depth=3, dag_scheduling=True,
            )
            state, responses, stats = cluster.run_workload(items)
            assert state == ref_state
            assert responses == ref_responses
            makespans[op_cost] = stats.makespan
        assert makespans[4.0] > 2.0 * makespans[1.0]

    def test_dag_cluster_beats_chain_atomic_on_contended_mix(self):
        items = make_items(APPROVAL_HEAVY_MIX, 400)
        kwargs = dict(
            num_nodes=4, lanes_per_node=8, window=64, pipeline_depth=3
        )
        atomic = TokenCluster(make_token(), dag_scheduling=False, **kwargs)
        dag = TokenCluster(make_token(), dag_scheduling=True, **kwargs)
        atomic.run_workload(items)
        dag.run_workload(items)
        assert dag.stats.makespan < atomic.stats.makespan
