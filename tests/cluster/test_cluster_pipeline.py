"""Cluster cross-round pipelining: equivalence and gating properties.

Machine-checked guarantees of the pipelined router
(:class:`repro.cluster.router.Router` with ``pipeline_depth > 1``):

* **barrier identity** — ``ClusterConfig.legacy()`` (equivalently the
  explicit pre-flip kwargs) is the historical barrier cluster, bit for
  bit, stats dictionary included;
* **serial equivalence** — for *any* pipeline depth, node count, shard
  geometry, and lease schedule, the final state and every response equal
  a plain sequential execution in submission order;
* **depth and node-count invariance** — the outcome never depends on the
  overlap depth or the topology;
* **gating sanity** — rounds in flight never exceed the configured depth
  and the per-node frontier keeps each node's rounds strictly ordered.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, TokenCluster
from repro.errors import ClusterError
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
)

DEPTHS = (1, 2, 3, 4)
NODE_COUNTS = (1, 2, 3, 5)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def cluster_run(factory, items, nodes, depth, window=16, **kwargs):
    cluster = TokenCluster(
        factory(),
        num_nodes=nodes,
        lanes_per_node=4,
        window=window,
        pipeline_depth=depth,
        **kwargs,
    )
    return cluster.run_workload(items)


class TestBarrierIdentity:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_depth_one_is_the_historical_cluster(self, mix_name):
        # ClusterConfig.legacy() and the explicit pre-flip kwargs are the
        # same barrier cluster bit for bit.
        items = TokenWorkloadGenerator(
            12, seed=37, mix=MIXES[mix_name]
        ).generate(160)
        default = TokenCluster(
            ERC20TokenType(12, total_supply=240),
            ClusterConfig.legacy(num_nodes=4, lanes_per_node=4, window=16),
        )
        d_state, d_responses, d_stats = default.run_workload(items)
        explicit = TokenCluster(
            ERC20TokenType(12, total_supply=240),
            num_nodes=4,
            lanes_per_node=4,
            window=16,
            pipeline_depth=1,
            dag_scheduling=False,
            team_threshold=0,
            lane_ttl=None,
        )
        e_state, e_responses, e_stats = explicit.run_workload(items)
        assert e_state == d_state
        assert e_responses == d_responses
        assert e_stats.as_dict() == d_stats.as_dict()

    def test_depth_must_be_positive(self):
        with pytest.raises(ClusterError):
            TokenCluster(
                ERC20TokenType(4, total_supply=40),
                num_nodes=2,
                pipeline_depth=0,
            )


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_erc20_state_and_responses_match_spec(self, mix_name, depth):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=71, mix=MIXES[mix_name]
        ).generate(200)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(12, total_supply=240), items, 4, depth
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 4),
        nodes=st.sampled_from(NODE_COUNTS),
        hotspot=st.sampled_from([0.0, 0.6]),
        lease_min_gain=st.sampled_from([1, 2]),
    )
    def test_erc20_hypothesis_sweep(
        self, seed, depth, nodes, hotspot, lease_min_gain
    ):
        """Any depth × node count × lease schedule: the knobs change the
        message pattern and the overlap, never the outcome."""
        token = ERC20TokenType(8, total_supply=80)
        items = TokenWorkloadGenerator(
            8,
            seed=seed,
            mix=SPENDER_HEAVY_MIX,
            hotspot_fraction=hotspot,
            hotspot_accounts=2,
        ).generate(100)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(8, total_supply=80),
            items,
            nodes,
            depth,
            seed=seed,
            lease_min_gain=lease_min_gain,
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(2, 4),
        num_shards=st.sampled_from([16, 23]),
    )
    def test_shard_geometry_never_changes_the_outcome(
        self, seed, depth, num_shards
    ):
        token = ERC20TokenType(10, total_supply=200)
        items = TokenWorkloadGenerator(
            10, seed=seed, mix=WorkloadMix(), zipf_s=1.2
        ).generate(120)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(10, total_supply=200),
            items,
            3,
            depth,
            num_shards=num_shards,
            seed=seed,
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(2, 4))
    def test_erc721_races(self, seed, depth):
        rng = random.Random(seed)
        factory = lambda: ERC721TokenType(  # noqa: E731
            4, initial_owners=[0, 1, 2, 3, 0, 1]
        )
        names = ["transferFrom", "approve", "ownerOf", "setApprovalForAll"]
        items = []
        for _ in range(60):
            name = rng.choice(names)
            pid = rng.randrange(4)
            if name == "transferFrom":
                operation = op(
                    name, rng.randrange(4), rng.randrange(4), rng.randrange(6)
                )
            elif name == "approve":
                operation = op(name, rng.randrange(4), rng.randrange(6))
            elif name == "ownerOf":
                operation = op(name, rng.randrange(6))
            else:
                operation = op(name, rng.randrange(4), rng.random() < 0.5)
            items.append(WorkloadItem(pid, operation))
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = cluster_run(
            factory, items, 3, depth, window=12
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(2, 4))
    def test_asset_transfer_shared_accounts(self, seed, depth):
        rng = random.Random(seed)
        owner_map = [{0, 1}, {1}, {2}, {3}, {0, 3}]
        factory = lambda: AssetTransferType(  # noqa: E731
            [20] * 5, owner_map=owner_map, num_processes=4
        )
        items = [
            WorkloadItem(
                rng.randrange(4),
                op(
                    "transfer",
                    rng.randrange(5),
                    rng.randrange(5),
                    rng.randint(0, 6),
                ),
            )
            for _ in range(80)
        ]
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = cluster_run(factory, items, 3, depth, window=16)
        assert state == ref_state
        assert responses == ref_responses


class TestDepthInvariance:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_all_depths_agree(self, mix_name):
        items = TokenWorkloadGenerator(
            12, seed=29, mix=MIXES[mix_name]
        ).generate(160)
        outcomes = [
            cluster_run(
                lambda: ERC20TokenType(12, total_supply=240), items, 4, depth
            )[:2]
            for depth in DEPTHS
        ]
        first_state, first_responses = outcomes[0]
        for state, responses in outcomes[1:]:
            assert state == first_state
            assert responses == first_responses

    def test_same_config_same_stats(self):
        items = TokenWorkloadGenerator(10, seed=5).generate(150)
        runs = [
            cluster_run(
                lambda: ERC20TokenType(10, total_supply=100), items, 3, 3
            )
            for _ in range(2)
        ]
        assert runs[0][:2] == runs[1][:2]
        assert runs[0][2].as_dict() == runs[1][2].as_dict()


class TestGating:
    def test_inflight_bounded_by_depth(self):
        for depth in (2, 3):
            items = TokenWorkloadGenerator(
                16, seed=9, mix=OWNER_ONLY_MIX
            ).generate(400)
            _, _, stats = cluster_run(
                lambda: ERC20TokenType(16, total_supply=320),
                items,
                4,
                depth,
                window=16,
            )
            assert stats.pipeline_depth == depth
            assert 2 <= stats.max_inflight_rounds <= depth
            assert all(r.inflight <= depth for r in stats.round_log)

    def test_node_frontiers_stay_monotone(self):
        """Every node executes its rounds strictly in round order (the
        per-node frontier ClusterNode enforces as a hard invariant)."""
        cluster = TokenCluster(
            ERC20TokenType(12, total_supply=240),
            num_nodes=4,
            lanes_per_node=4,
            window=16,
            pipeline_depth=3,
        )
        items = TokenWorkloadGenerator(
            12, seed=3, mix=SPENDER_HEAVY_MIX
        ).generate(240)
        cluster.run_workload(items)
        for node in cluster.nodes:
            assert node.frontier_round >= -1
        assert cluster.router.idle

    def test_contended_traffic_still_escalates(self):
        items = TokenWorkloadGenerator(
            12, seed=41, mix=SPENDER_HEAVY_MIX
        ).generate(240)
        _, _, stats = cluster_run(
            lambda: ERC20TokenType(12, total_supply=240), items, 4, 3
        )
        assert stats.escalated_ops > 0
        assert stats.escalation_messages > 0

    def test_pipelined_beats_barrier_on_contended_mix(self):
        """The headline, at unit-test scale: overlapping the sync phase
        with execution shortens the makespan."""
        items = TokenWorkloadGenerator(
            32, seed=23, mix=APPROVAL_HEAVY_MIX
        ).generate(400)
        _, _, barrier = cluster_run(
            lambda: ERC20TokenType(32, total_supply=640), items, 4, 1,
            window=32,
        )
        _, _, piped = cluster_run(
            lambda: ERC20TokenType(32, total_supply=640), items, 4, 3,
            window=32,
        )
        assert piped.makespan < barrier.makespan
