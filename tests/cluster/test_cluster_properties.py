"""Cluster determinism and serial equivalence (the ISSUE's property suite).

Machine-checked guarantees, for *any* node count and *any* lease schedule:

* **serial equivalence** — the cluster's final state and every response
  equal a plain sequential execution of the workload in submission order
  against the object's sequential specification;
* **node-count invariance** — the same workload produces the same state
  and responses on 1, 2, 3, 5 and 8 nodes;
* **lease-schedule invariance** — tightening or loosening the lease policy
  (``lease_min_gain``), the shard count, or the latency seed changes the
  message schedule but never the outcome;
* **determinism** — identical configuration implies identical stats.

Exercised across workload mixes, skews (uniform / Zipf / hot-spot), object
types (ERC20, ERC721, asset transfer), and the multi-contract mix.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import TokenCluster
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    MultiContractWorkloadGenerator,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
    standard_multi_contract,
)

NODE_COUNTS = (1, 2, 3, 5, 8)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def cluster_run(factory, items, nodes, window=16, **kwargs):
    cluster = TokenCluster(
        factory(), num_nodes=nodes, lanes_per_node=4, window=window, **kwargs
    )
    return cluster.run_workload(items)


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("nodes", NODE_COUNTS)
    def test_erc20_state_and_responses_match_spec(self, mix_name, nodes):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=71, mix=MIXES[mix_name]
        ).generate(200)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(12, total_supply=240), items, nodes
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.sampled_from(NODE_COUNTS),
        hotspot=st.sampled_from([0.0, 0.6]),
        lease_min_gain=st.sampled_from([1, 2, 4]),
    )
    def test_erc20_hypothesis_sweep(self, seed, nodes, hotspot, lease_min_gain):
        """Any node count × any lease schedule: the schedule knobs change
        the message pattern, never the outcome."""
        token = ERC20TokenType(8, total_supply=80)
        items = TokenWorkloadGenerator(
            8,
            seed=seed,
            mix=SPENDER_HEAVY_MIX,
            hotspot_fraction=hotspot,
            hotspot_accounts=2,
        ).generate(100)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(8, total_supply=80),
            items,
            nodes,
            seed=seed,
            lease_min_gain=lease_min_gain,
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.sampled_from(NODE_COUNTS),
        num_shards=st.sampled_from([16, 23, 64]),
    )
    def test_shard_geometry_never_changes_the_outcome(
        self, seed, nodes, num_shards
    ):
        token = ERC20TokenType(10, total_supply=200)
        items = TokenWorkloadGenerator(
            10, seed=seed, mix=WorkloadMix(), zipf_s=1.2
        ).generate(120)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = cluster_run(
            lambda: ERC20TokenType(10, total_supply=200),
            items,
            nodes,
            num_shards=max(num_shards, nodes),
            seed=seed,
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), nodes=st.sampled_from(NODE_COUNTS))
    def test_erc721_races(self, seed, nodes):
        rng = random.Random(seed)
        factory = lambda: ERC721TokenType(  # noqa: E731
            4, initial_owners=[0, 1, 2, 3, 0, 1]
        )
        names = ["transferFrom", "approve", "ownerOf", "setApprovalForAll"]
        items = []
        for _ in range(60):
            name = rng.choice(names)
            pid = rng.randrange(4)
            if name == "transferFrom":
                operation = op(
                    name, rng.randrange(4), rng.randrange(4), rng.randrange(6)
                )
            elif name == "approve":
                operation = op(name, rng.randrange(4), rng.randrange(6))
            elif name == "ownerOf":
                operation = op(name, rng.randrange(6))
            else:
                operation = op(name, rng.randrange(4), rng.random() < 0.5)
            items.append(WorkloadItem(pid, operation))
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = cluster_run(factory, items, nodes, window=12)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), nodes=st.sampled_from(NODE_COUNTS))
    def test_asset_transfer_shared_accounts(self, seed, nodes):
        rng = random.Random(seed)
        owner_map = [{0, 1}, {1}, {2}, {3}, {0, 3}]
        factory = lambda: AssetTransferType(  # noqa: E731
            [20] * 5, owner_map=owner_map, num_processes=4
        )
        items = [
            WorkloadItem(
                rng.randrange(4),
                op(
                    "transfer",
                    rng.randrange(5),
                    rng.randrange(5),
                    rng.randint(0, 6),
                ),
            )
            for _ in range(80)
        ]
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = cluster_run(factory, items, nodes, window=16)
        assert state == ref_state
        assert responses == ref_responses


class TestNodeCountInvariance:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_final_state_identical_across_node_counts(self, mix_name):
        items = TokenWorkloadGenerator(
            12, seed=29, mix=MIXES[mix_name]
        ).generate(200)
        outcomes = [
            cluster_run(
                lambda: ERC20TokenType(12, total_supply=240), items, nodes
            )[:2]
            for nodes in NODE_COUNTS
        ]
        first_state, first_responses = outcomes[0]
        for state, responses in outcomes[1:]:
            assert state == first_state
            assert responses == first_responses


class TestMultiContract:
    def test_per_contract_clusters_match_their_specs(self):
        """The multi-contract mix routed one cluster per contract (the
        multi-token pattern) stays serially equivalent per contract."""
        object_types, generator = standard_multi_contract(
            16, seed=5, zipf_s=1.1, hotspot_fraction=0.2
        )
        per_contract = MultiContractWorkloadGenerator.split(
            generator.generate(240)
        )
        assert set(per_contract) == set(object_types)
        for name, items in per_contract.items():
            object_type = object_types[name]
            ref_state, ref_responses = serial_reference(object_type, items)
            cluster = TokenCluster(
                object_type, num_nodes=3, lanes_per_node=4, window=16
            )
            state, responses, stats = cluster.run_workload(items)
            assert state == ref_state, name
            assert responses == ref_responses, name
            assert stats.ops_executed == len(items)


class TestValidatedRuns:
    """Runs with the router's classifier cross-checked against the
    semantic oracle at every pre-round state."""

    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_validated_against_oracle(self, mix_name):
        items = TokenWorkloadGenerator(
            10, seed=13, mix=MIXES[mix_name]
        ).generate(150)
        _, _, stats = cluster_run(
            lambda: ERC20TokenType(10, total_supply=200),
            items,
            nodes=4,
            validate=True,
        )
        assert stats.ops_executed == 150
