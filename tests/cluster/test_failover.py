"""Fail-over under fault schedules: the recovery contract, machine-checked.

Every test here runs a faulted cluster against the object's sequential
specification and demands *serial equivalence*: no committed operation
lost, none double-applied, every response identical to the fault-free
run.  On top of that sit the protocol-level claims — recovery armed but
idle costs nothing, revocation bypasses the lease cooldown while rejoin
rebalancing honors it, and an unsurvivable schedule fails loudly instead
of silently dropping operations.  A hypothesis property sweeps random
crash schedules across pipeline depths and node counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import TokenCluster
from repro.config import ClusterConfig, FaultConfig
from repro.errors import ClusterError
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import CHAIN_HEAVY_MIX, TokenWorkloadGenerator

SEED = 7
ACCOUNTS = 64
TIMEOUT = 12.0


def make_items(ops: int = 400, seed: int = SEED):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=seed, mix=CHAIN_HEAVY_MIX
    ).generate(ops)


def reference(items):
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    return token.run([(item.pid, item.operation) for item in items])


def run_cluster(
    items,
    fault: FaultConfig | None = None,
    timeout: float | None = TIMEOUT,
    nodes: int = 4,
    **overrides,
) -> TokenCluster:
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    config = ClusterConfig(
        num_nodes=nodes,
        lanes_per_node=4,
        window=64,
        seed=SEED,
        result_timeout=timeout,
        fault=fault if fault is not None else FaultConfig(),
        **overrides,
    )
    cluster = TokenCluster(token, config=config)
    cluster.run_workload(items)
    return cluster


def assert_equivalent(cluster: TokenCluster, items) -> None:
    ref_state, ref_responses = reference(items)
    assert cluster.state == ref_state
    responses = [cluster.router.responses[i] for i in range(len(items))]
    assert responses == ref_responses
    assert cluster.stats.ops_lost == 0


SCHEDULES = {
    "permanent_crash": FaultConfig(enabled=True, crashes=((1, TIMEOUT),)),
    "crash_restart": FaultConfig(
        enabled=True, crashes=((1, TIMEOUT, 40.0),)
    ),
    "double_crash": FaultConfig(
        enabled=True, crashes=((1, 10.0), (3, 25.0))
    ),
    "result_drop_burst": FaultConfig(
        enabled=True, drops=(("cl_result", 1.0, 5.0, 6.0),)
    ),
    "grant_drops": FaultConfig(
        enabled=True, drops=(("cl_lease_grant", 0.4, 0.0, 30.0),), seed=3
    ),
    "result_delays": FaultConfig(
        enabled=True, delays=(("cl_result", 4.0, 0.5),), seed=5
    ),
    "crash_plus_ack_delays": FaultConfig(
        enabled=True,
        crashes=((2, 15.0, 45.0),),
        delays=(("cl_lease_ack", 3.0, 0.5),),
        seed=11,
    ),
}


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_serial_equivalence_under_fault_schedules(name):
    items = make_items()
    cluster = run_cluster(items, fault=SCHEDULES[name])
    assert_equivalent(cluster, items)


def test_crashes_exercise_revocation_and_replay():
    items = make_items()
    stats = run_cluster(items, fault=SCHEDULES["permanent_crash"]).stats
    assert stats.revocations > 0
    assert stats.ops_replayed > 0
    assert stats.rejoins == 0
    restarted = run_cluster(items, fault=SCHEDULES["crash_restart"]).stats
    assert restarted.rejoins == 1


def test_recovery_armed_but_idle_is_identical_to_unarmed():
    """``result_timeout`` set with no fault firing: every timer is
    cancelled before it fires, and a cancelled timer never advances the
    virtual clock — so the whole stats dict reproduces bit for bit."""
    items = make_items()
    unarmed = run_cluster(items, timeout=None)
    armed = run_cluster(items, timeout=TIMEOUT)
    assert armed.state == unarmed.state
    assert armed.router.responses == unarmed.router.responses
    unarmed_stats = unarmed.stats.as_dict()
    armed_stats = armed.stats.as_dict()
    assert armed_stats == unarmed_stats
    assert armed.stats.makespan == unarmed.stats.makespan


def test_unsurvivable_schedule_fails_loudly():
    """Dropping every result forever: every node still answers probes,
    so nobody is declared dead — instead each replayed copy is eaten in
    turn until the retransmission budget runs out.  The run must end in
    a ClusterError — never in silent operation loss."""
    items = make_items()
    with pytest.raises(ClusterError, match="retransmission budget"):
        run_cluster(
            items,
            fault=FaultConfig(
                enabled=True, drops=(("cl_result", 1.0, 0.0, 1e9),)
            ),
        )


def test_revocation_bypasses_lease_cooldown():
    """A revoked shard must be immediately re-grantable: the fail-over
    drops the shard's cooldown pin (a dead owner is not ping-pong), while
    rejoin rebalancing *sets* pins like any planned migration."""
    items = make_items()
    token = ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)
    config = ClusterConfig(
        num_nodes=4,
        lanes_per_node=4,
        window=64,
        seed=SEED,
        lease_cooldown=50,
        result_timeout=TIMEOUT,
        fault=FaultConfig(enabled=True, crashes=((1, TIMEOUT, 60.0),)),
    )
    cluster = TokenCluster(token, config=config)
    router = cluster.router
    observed = {}

    original_declare = router._declare_dead

    def spy_declare(node):
        owned_before = set(cluster.shard_map.shards_of_node(node))
        original_declare(node)
        moved = owned_before - set(cluster.shard_map.shards_of_node(node))
        observed.setdefault("revoked", set()).update(moved)
        pinned = moved & set(router._last_migration)
        assert not pinned, (
            f"revoked shards still pinned by the cooldown: {pinned}"
        )

    original_rejoin = router.node_rejoined

    def spy_rejoin(node):
        owned_before = set(cluster.shard_map.shards_of_node(node))
        original_rejoin(node)
        gained = set(cluster.shard_map.shards_of_node(node)) - owned_before
        observed.setdefault("rebalanced", set()).update(gained)
        unpinned = gained - set(router._last_migration)
        assert not unpinned, (
            f"rejoin rebalancing skipped the cooldown pin: {unpinned}"
        )

    router._declare_dead = spy_declare
    router.node_rejoined = spy_rejoin
    cluster.run_workload(items)
    assert observed.get("revoked"), "the crash never revoked a shard"
    assert observed.get("rebalanced"), "the rejoin never rebalanced"
    assert_equivalent(cluster, items)


@settings(max_examples=20, deadline=None)
@given(
    data=st.data(),
    nodes=st.integers(min_value=2, max_value=4),
    depth=st.integers(min_value=2, max_value=3),
    workload_seed=st.integers(min_value=0, max_value=2**16),
)
def test_serial_equivalence_under_random_crash_schedules(
    data, nodes, depth, workload_seed
):
    """For ANY crash schedule leaving at least one node alive, the
    surviving operations' results are serially equivalent to the
    fault-free run — across node counts and pipeline depths."""
    crash_count = data.draw(
        st.integers(min_value=1, max_value=nodes - 1), label="crashes"
    )
    victims = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=nodes - 1),
            min_size=crash_count,
            max_size=crash_count,
            unique=True,
        ),
        label="victims",
    )
    crashes = []
    for victim in victims:
        at = data.draw(
            st.floats(min_value=1.0, max_value=80.0), label="crash_at"
        )
        restart = data.draw(
            st.one_of(
                st.none(),
                st.floats(min_value=at + 1.0, max_value=at + 120.0),
            ),
            label="restart_at",
        )
        crashes.append((victim, at, restart))
    items = make_items(ops=160, seed=workload_seed)
    cluster = run_cluster(
        items,
        fault=FaultConfig(enabled=True, crashes=tuple(crashes)),
        nodes=nodes,
        pipeline_depth=depth,
    )
    assert_equivalent(cluster, items)
