"""Lease anti-churn: the cooldown stops alternating-round ping-pong.

Two chains alternate majority ownership of one account's shard: rounds
anchored at node 0 pull the shard over, rounds anchored at node 1 pull it
back.  Without hysteresis every round migrates the lease; with
``lease_cooldown`` the shard is pinned for the configured rounds after a
move, suppressed handoffs are counted, and — because co-location, not
ownership, is the safety argument — the outcome never changes.
"""

from __future__ import annotations

import pytest

from repro.cluster import TokenCluster
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import Operation
from repro.workloads import WorkloadItem

ACCOUNTS = 24
WINDOW = 3


def pick_accounts(cluster: TokenCluster) -> tuple[int, int, int]:
    """(a, b, c): a on node 0, b and c on node 1 with distinct shards."""
    shard_map = cluster.shard_map
    a = next(acc for acc in range(ACCOUNTS) if shard_map.owner_of(acc) == 0)
    b = next(acc for acc in range(ACCOUNTS) if shard_map.owner_of(acc) == 1)
    c = next(
        acc
        for acc in range(ACCOUNTS)
        if shard_map.owner_of(acc) == 1
        and shard_map.shard_of(acc) != shard_map.shard_of(b)
    )
    return a, b, c


def ping_pong_workload(
    a: int, b: int, c: int, rounds: int
) -> list[WorkloadItem]:
    """Alternating uncontended cross-shard chains tugging at b's shard.

    Even rounds: two transfers by ``a`` crediting ``b`` plus one by ``b``
    — majority at node 0, so the router migrates ``b``'s shard there.
    Odd rounds: the mirror image anchored at ``c`` (node 1) pulls it back.
    Each chain is one window (three operations, no contention — distinct
    contended cells — so the lease branch, not escalation, resolves it).
    """
    items: list[WorkloadItem] = []
    for round_index in range(rounds):
        puller = a if round_index % 2 == 0 else c
        items.extend(
            [
                WorkloadItem(puller, Operation("transfer", (b, 1))),
                WorkloadItem(puller, Operation("transfer", (b, 1))),
                WorkloadItem(b, Operation("transfer", (puller, 1))),
            ]
        )
    return items


def run(items, cooldown: int):
    token = ERC20TokenType(
        ACCOUNTS, initial_state=TokenState.create([50] * ACCOUNTS)
    )
    cluster = TokenCluster(
        token,
        num_nodes=2,
        lanes_per_node=2,
        window=WINDOW,
        seed=11,
        lease_cooldown=cooldown,
    )
    state, responses, stats = cluster.run_workload(items)
    return cluster, state, responses, stats


class TestLeaseCooldown:
    def test_without_cooldown_the_shard_ping_pongs(self):
        probe = TokenCluster(
            ERC20TokenType(ACCOUNTS, total_supply=0), num_nodes=2, window=WINDOW
        )
        a, b, c = pick_accounts(probe)
        items = ping_pong_workload(a, b, c, rounds=8)
        cluster, _, _, stats = run(items, cooldown=0)
        shard_b = cluster.shard_map.shard_of(b)
        moves = [
            record
            for record in cluster.shard_map.migrations
            if record.shard == shard_b
        ]
        # The lease chases the majority every round: back and forth.
        assert len(moves) >= 6
        assert {m.to_node for m in moves} == {0, 1}
        assert stats.lease_cooldown_skips == 0

    def test_cooldown_suppresses_the_churn(self):
        probe = TokenCluster(
            ERC20TokenType(ACCOUNTS, total_supply=0), num_nodes=2, window=WINDOW
        )
        a, b, c = pick_accounts(probe)
        items = ping_pong_workload(a, b, c, rounds=8)
        churn, _, _, churn_stats = run(items, cooldown=0)
        calm, _, _, calm_stats = run(items, cooldown=3)
        shard_b = churn.shard_map.shard_of(b)
        churn_moves = sum(
            1 for r in churn.shard_map.migrations if r.shard == shard_b
        )
        calm_moves = sum(
            1 for r in calm.shard_map.migrations if r.shard == shard_b
        )
        assert calm_moves < churn_moves
        assert calm_stats.lease_cooldown_skips > 0
        assert calm_stats.lease_migrations < churn_stats.lease_migrations

    @pytest.mark.parametrize("cooldown", [0, 1, 3, 10])
    def test_cooldown_never_changes_the_outcome(self, cooldown):
        probe = TokenCluster(
            ERC20TokenType(ACCOUNTS, total_supply=0), num_nodes=2, window=WINDOW
        )
        a, b, c = pick_accounts(probe)
        items = ping_pong_workload(a, b, c, rounds=6)
        token = ERC20TokenType(
            ACCOUNTS, initial_state=TokenState.create([50] * ACCOUNTS)
        )
        ref_state, ref_responses = token.run(
            [(item.pid, item.operation) for item in items]
        )
        _, state, responses, _ = run(items, cooldown=cooldown)
        assert state == ref_state
        assert responses == ref_responses

    def test_negative_cooldown_rejected(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            TokenCluster(
                ERC20TokenType(4, total_supply=4),
                num_nodes=2,
                num_shards=4,
                lease_cooldown=-1,
            )
