"""The unified config API and the legacy() bit-identity contract.

PR 9 flipped the fast-path defaults (DAG scheduling, pipelining, team
lanes, lane GC) on behind :class:`repro.config.EngineConfig` /
:class:`repro.config.ClusterConfig`.  These tests pin the three promises
that flip rests on:

* **legacy identity** — ``legacy()`` is the pre-flip system bit for bit:
  across every traced setup of ``tests/obs/test_identity.py``, a
  construction from the preset and one from the explicit pre-flip kwargs
  produce identical state, responses, and stats dictionaries;
* **round-trip** — ``as_dict()`` / ``from_dict()`` invert each other
  (bench baselines embed configs through exactly this path), and unknown
  keys fail loudly;
* **precedence** — an explicit kwarg beats the ``config=`` value, which
  beats the dataclass default; and a mistyped knob raises a TypeError
  instead of vanishing into a kwargs sink.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, TokenCluster
from repro.config import EngineConfig
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.errors import ClusterError, EngineError
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
)

ACCOUNTS = 48
OPS = 256

#: The pre-flip engine defaults, spelled out the way a PR 1-8 caller
#: would have (by not passing the knobs at all).
ENGINE_PREFLIP = dict(
    dag_scheduling=False,
    team_threshold=0,
    pipeline_depth=1,
    lane_ttl=None,
    split_sync=False,
)
CLUSTER_PREFLIP = dict(
    dag_scheduling=False,
    team_threshold=0,
    pipeline_depth=1,
    lane_ttl=None,
)


def make_items(mix):
    return TokenWorkloadGenerator(ACCOUNTS, seed=11, mix=mix).generate(OPS)


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


def _engine_pair(cls, mix, **knobs):
    """(legacy-preset construction, explicit pre-flip construction)."""
    preset = EngineConfig.legacy(num_lanes=4, seed=11, **knobs)
    explicit_knobs = dict(ENGINE_PREFLIP)
    explicit_knobs.update(knobs)
    if cls is BatchExecutor:
        # The barrier executor is depth 1 by construction and takes no
        # pipeline_depth kwarg.
        explicit_knobs.pop("pipeline_depth")
    explicit = cls(make_token(), num_lanes=4, seed=11, **explicit_knobs)
    return cls(make_token(), preset), explicit, mix


def _cluster_pair(mix, **knobs):
    preset = ClusterConfig.legacy(
        num_nodes=3, lanes_per_node=4, seed=11, **knobs
    )
    explicit_knobs = dict(CLUSTER_PREFLIP)
    explicit_knobs.update(knobs)
    explicit = TokenCluster(
        make_token(), num_nodes=3, lanes_per_node=4, seed=11, **explicit_knobs
    )
    return TokenCluster(make_token(), preset), explicit, mix


#: The seven traced setups of tests/obs/test_identity.py, re-expressed
#: as legacy-preset vs explicit-pre-flip-kwargs pairs.
SETUPS = {
    "engine": lambda: _engine_pair(BatchExecutor, APPROVAL_HEAVY_MIX),
    "engine_dag": lambda: _engine_pair(
        BatchExecutor, CHAIN_HEAVY_MIX, dag_scheduling=True
    ),
    "engine_teams": lambda: _engine_pair(
        BatchExecutor, APPROVAL_HEAVY_MIX, team_threshold=4
    ),
    "pipelined": lambda: _engine_pair(
        PipelinedExecutor, APPROVAL_HEAVY_MIX, pipeline_depth=3
    ),
    "cluster_barrier": lambda: _cluster_pair(APPROVAL_HEAVY_MIX),
    "cluster_pipelined": lambda: _cluster_pair(
        APPROVAL_HEAVY_MIX, pipeline_depth=3
    ),
    "cluster_units": lambda: _cluster_pair(
        CHAIN_HEAVY_MIX, pipeline_depth=3, dag_scheduling=True
    ),
}


class TestLegacyIdentity:
    @pytest.mark.parametrize("label", sorted(SETUPS))
    def test_legacy_preset_equals_explicit_preflip_kwargs(self, label):
        preset_run, explicit_run, mix = SETUPS[label]()
        items = make_items(mix)
        p_state, p_responses, p_stats = preset_run.run_workload(items)
        e_state, e_responses, e_stats = explicit_run.run_workload(items)
        assert p_state == e_state
        assert p_responses == e_responses
        assert p_stats.as_dict() == e_stats.as_dict()

    def test_legacy_presets_pin_the_preflip_values(self):
        engine = EngineConfig.legacy()
        for knob, value in ENGINE_PREFLIP.items():
            assert getattr(engine, knob) == value, knob
        cluster = ClusterConfig.legacy()
        for knob, value in CLUSTER_PREFLIP.items():
            assert getattr(cluster, knob) == value, knob

    def test_defaults_flip_every_fast_path_on(self):
        engine = EngineConfig()
        assert engine.dag_scheduling is True
        assert engine.team_threshold > 0
        assert engine.pipeline_depth > 1
        assert engine.lane_ttl is not None
        assert engine.split_sync is True
        cluster = ClusterConfig()
        assert cluster.dag_scheduling is True
        assert cluster.team_threshold > 0
        assert cluster.pipeline_depth > 1
        assert cluster.lane_ttl is not None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            EngineConfig(),
            EngineConfig.legacy(),
            EngineConfig(num_lanes=7, lane_ttl=None, seed=3),
            ClusterConfig(),
            ClusterConfig.legacy(),
            ClusterConfig(num_nodes=2, mempool_capacity=17),
        ],
        ids=lambda c: type(c).__name__ + str(hash(c) % 997),
    )
    def test_as_dict_from_dict_round_trips(self, config):
        assert type(config).from_dict(config.as_dict()) == config

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(EngineError):
            EngineConfig.from_dict({"num_lanes": 4, "warp_drive": True})
        with pytest.raises(ClusterError):
            ClusterConfig.from_dict({"num_noodles": 4})

    def test_validation_applies_to_round_tripped_values(self):
        with pytest.raises(EngineError):
            EngineConfig.from_dict({"window": 0})
        with pytest.raises(ClusterError):
            ClusterConfig.from_dict({"num_nodes": 0})


class TestPrecedence:
    def test_kwarg_beats_config_beats_default(self):
        # Default: dag on.  Config: dag off.  Kwarg: dag on again.
        engine = BatchExecutor(make_token(), EngineConfig.legacy())
        assert engine.config.dag_scheduling is False
        engine = BatchExecutor(
            make_token(), EngineConfig.legacy(), dag_scheduling=True
        )
        assert engine.config.dag_scheduling is True
        assert engine.config.team_threshold == 0  # config still wins here
        engine = BatchExecutor(make_token())
        assert engine.config == EngineConfig()

    def test_cluster_kwarg_beats_config(self):
        cluster = TokenCluster(
            make_token(), ClusterConfig.legacy(), num_nodes=2, pipeline_depth=3
        )
        assert cluster.config.num_nodes == 2
        assert cluster.config.pipeline_depth == 3
        assert cluster.config.dag_scheduling is False

    def test_explicit_none_is_an_override_not_unset(self):
        engine = BatchExecutor(
            make_token(), EngineConfig(lane_ttl=8), lane_ttl=None
        )
        assert engine.config.lane_ttl is None

    def test_pipelined_rejects_a_mistyped_knob(self):
        with pytest.raises(TypeError):
            PipelinedExecutor(make_token(), pipeline_dpeth=2)

    def test_batch_rejects_a_mistyped_knob(self):
        with pytest.raises(TypeError):
            BatchExecutor(make_token(), num_lane=4)

    def test_cluster_rejects_a_mistyped_knob(self):
        with pytest.raises(TypeError):
            TokenCluster(make_token(), lanes_per_nodes=4)


class TestValidationThroughConstructors:
    def test_engine_validation_raises_engine_error(self):
        with pytest.raises(EngineError):
            BatchExecutor(make_token(), num_lanes=0)
        with pytest.raises(EngineError):
            PipelinedExecutor(make_token(), pipeline_depth=0)

    def test_cluster_validation_raises_cluster_error(self):
        with pytest.raises(ClusterError):
            TokenCluster(make_token(), num_nodes=0)
        with pytest.raises(ClusterError):
            TokenCluster(make_token(), lane_ttl=0)
