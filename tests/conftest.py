"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import Operation


@pytest.fixture
def example1_token_type() -> ERC20TokenType:
    """The paper's Example 1 deployment: 3 accounts, Alice holds 10."""
    return ERC20TokenType(3, total_supply=10, deployer=0)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def random_token_operation(
    rng: random.Random, num_accounts: int, max_value: int = 8
) -> tuple[int, Operation]:
    """A random valid-domain ERC20 invocation (may fail, never raises)."""
    pid = rng.randrange(num_accounts)
    kind = rng.choice(
        ["transfer", "transferFrom", "approve", "balanceOf", "allowance", "totalSupply"]
    )
    if kind == "transfer":
        operation = Operation(
            kind, (rng.randrange(num_accounts), rng.randint(0, max_value))
        )
    elif kind == "transferFrom":
        operation = Operation(
            kind,
            (
                rng.randrange(num_accounts),
                rng.randrange(num_accounts),
                rng.randint(0, max_value),
            ),
        )
    elif kind == "approve":
        operation = Operation(
            kind, (rng.randrange(num_accounts), rng.randint(0, max_value))
        )
    elif kind == "balanceOf":
        operation = Operation(kind, (rng.randrange(num_accounts),))
    elif kind == "allowance":
        operation = Operation(
            kind, (rng.randrange(num_accounts), rng.randrange(num_accounts))
        )
    else:
        operation = Operation("totalSupply")
    return pid, operation


def random_token_state(
    rng: random.Random, num_accounts: int, supply: int = 20
) -> TokenState:
    """A random reachable-looking token state (non-negative balances summing
    to ``supply``, arbitrary allowances)."""
    cuts = sorted(rng.randint(0, supply) for _ in range(num_accounts - 1))
    balances = []
    previous = 0
    for cut in cuts:
        balances.append(cut - previous)
        previous = cut
    balances.append(supply - previous)
    allowances = {}
    for _ in range(rng.randint(0, 2 * num_accounts)):
        account = rng.randrange(num_accounts)
        spender = rng.randrange(num_accounts)
        allowances[(account, spender)] = rng.randint(0, supply)
    return TokenState.create(balances, allowances)
