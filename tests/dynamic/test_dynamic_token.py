"""Tests for the §7 dynamic-synchronization token network."""

from __future__ import annotations

import random

import pytest

from repro.dynamic.dynamic_token import (
    DynamicTokenNode,
    assert_converged,
    measure_dynamic,
)
from repro.errors import ProtocolError
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator


def make_network(n: int = 4, supply: int = 100, seed: int = 0, track=False):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    nodes = [
        DynamicTokenNode(i, network, n, supply=supply, track_groups=track)
        for i in range(n)
    ]
    return simulator, network, nodes


class TestOwnerOperations:
    def test_transfer_replicated_everywhere(self):
        simulator, _, nodes = make_network()
        record = nodes[0].submit_transfer(1, 30)
        simulator.run()
        assert record.response is True
        for node in nodes:
            assert node.state.balances == [70, 30, 0, 0]

    def test_invalid_transfer_rejected_locally(self):
        simulator, _, nodes = make_network()
        record = nodes[1].submit_transfer(0, 5)  # account 1 is empty
        simulator.run()
        assert record.response is False
        assert record.latency == 0.0
        for node in nodes:
            assert node.state.balances == [100, 0, 0, 0]

    def test_approve_replicated(self):
        simulator, _, nodes = make_network()
        nodes[0].submit_approve(2, 40)
        simulator.run()
        for node in nodes:
            assert node.state.allowances[0][2] == 40

    def test_per_account_fifo_order(self):
        simulator, _, nodes = make_network(seed=11)
        nodes[0].submit_transfer(1, 60)
        nodes[0].submit_transfer(2, 60)  # must fail: only 40 left
        simulator.run()
        for node in nodes:
            assert node.state.balances == [40, 60, 0, 0]


class TestTransferFrom:
    def test_group_round_then_apply(self):
        simulator, network, nodes = make_network()
        nodes[0].submit_approve(2, 40)
        simulator.run()
        record = nodes[2].submit_transfer_from(0, 3, 25)
        simulator.run()
        assert record.response is True
        for node in nodes:
            assert node.state.balances == [75, 0, 0, 25]
            assert node.state.allowances[0][2] == 15
        assert network.stats.by_type.get("group_propose", 0) >= 1
        assert network.stats.by_type.get("group_ack", 0) >= 1

    def test_unapproved_spender_rejected(self):
        simulator, _, nodes = make_network()
        record = nodes[2].submit_transfer_from(0, 3, 25)
        simulator.run()
        assert record.response is False
        for node in nodes:
            assert node.state.balances == [100, 0, 0, 0]

    def test_double_spend_prevented(self):
        # Two spenders with combined allowances exceeding the balance: the
        # owner's sequencing admits only what the balance covers.
        simulator, _, nodes = make_network(supply=10)
        nodes[0].submit_approve(1, 10)
        nodes[0].submit_approve(2, 10)
        simulator.run()
        record_a = nodes[1].submit_transfer_from(0, 1, 10)
        record_b = nodes[2].submit_transfer_from(0, 2, 10)
        simulator.run()
        assert [record_a.response, record_b.response].count(True) == 1
        assert_converged(nodes)
        assert sum(nodes[0].state.balances) == 10

    def test_owner_spending_own_allowance_path(self):
        simulator, _, nodes = make_network()
        nodes[0].submit_approve(0, 10)
        simulator.run()
        record = nodes[0].submit_transfer_from(0, 1, 5)
        simulator.run()
        assert record.response is True
        assert nodes[2].state.balances == [95, 5, 0, 0]


class TestConvergence:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_traffic_converges(self, seed):
        simulator, _, nodes = make_network(n=5, supply=200, seed=seed)
        rng = random.Random(seed)
        for i in range(1, 5):
            nodes[0].submit_transfer(i, 30)
        simulator.run()
        for i in range(5):
            nodes[i].submit_approve((i + 1) % 5, 15)
        simulator.run()
        for _ in range(40):
            actor = rng.randrange(5)
            if rng.random() < 0.35:
                source = (actor - 1) % 5
                nodes[actor].submit_transfer_from(
                    source, rng.randrange(5), rng.randint(1, 4)
                )
            else:
                nodes[actor].submit_transfer(
                    rng.randrange(5), rng.randint(1, 4)
                )
        simulator.run()
        assert_converged(nodes)
        assert sum(nodes[0].state.balances) == 200

    def test_divergence_detection_works(self):
        simulator, _, nodes = make_network()
        nodes[0].state.balances[0] += 1  # corrupt one replica
        with pytest.raises(ProtocolError):
            assert_converged(nodes)


class TestMeasurement:
    def test_stats(self):
        simulator, _, nodes = make_network(seed=3)
        nodes[0].submit_approve(1, 50)
        simulator.run()
        for i in range(5):
            nodes[0].submit_transfer(1, 2)
        nodes[1].submit_transfer_from(0, 2, 3)
        simulator.run()
        stats = measure_dynamic(nodes)
        assert stats.operations == 7
        assert stats.accepted == 7
        assert stats.rejected == 0
        assert stats.mean_latency > 0
        assert stats.messages_per_op > 0

    def test_group_tracking(self):
        simulator, _, nodes = make_network(track=True)
        nodes[0].submit_approve(1, 50)
        nodes[0].submit_approve(2, 50)
        simulator.run()
        tracker = nodes[3].tracker
        assert tracker is not None
        assert tracker.max_level_seen() == 3


class TestScalabilityShape:
    def test_owner_traffic_cost_independent_of_group_size(self):
        # transfer costs the same regardless of how many spenders exist.
        def messages_for_transfer(approvals: int) -> float:
            simulator, network, nodes = make_network(n=4, seed=1)
            for spender in range(1, approvals + 1):
                nodes[0].submit_approve(spender, 10)
            simulator.run()
            before = network.stats.messages_sent
            nodes[0].submit_transfer(1, 1)
            simulator.run()
            return network.stats.messages_sent - before

        assert messages_for_transfer(0) == messages_for_transfer(3)

    def test_transfer_from_cost_grows_with_group(self):
        def messages_for_tf(approvals: int) -> float:
            simulator, network, nodes = make_network(n=5, seed=1)
            for spender in range(1, approvals + 1):
                nodes[0].submit_approve(spender, 10)
            simulator.run()
            before = network.stats.messages_sent
            nodes[1].submit_transfer_from(0, 2, 1)
            simulator.run()
            return network.stats.messages_sent - before

        assert messages_for_tf(3) > messages_for_tf(1)
