"""Tests for the replica-side synchronization tracker."""

from __future__ import annotations

from repro.dynamic.sync_tracker import (
    GroupSizeTracker,
    ReplicaTokenState,
    group_coordination_cost,
    sync_group,
    sync_levels,
)


class TestReplicaState:
    def test_create(self):
        state = ReplicaTokenState.create(3, deployer=0, supply=10)
        assert state.balances == [10, 0, 0]
        assert state.allowances[0] == [0, 0, 0]

    def test_copy_is_deep(self):
        state = ReplicaTokenState.create(2, 0, 5)
        clone = state.copy()
        clone.balances[0] = 0
        clone.allowances[0][1] = 9
        assert state.balances[0] == 5
        assert state.allowances[0][1] == 0

    def test_snapshot_hashable_and_equal(self):
        a = ReplicaTokenState.create(2, 0, 5)
        b = ReplicaTokenState.create(2, 0, 5)
        assert a.snapshot() == b.snapshot()
        assert hash(a.snapshot()) == hash(b.snapshot())


class TestSyncGroup:
    def test_owner_only_by_default(self):
        state = ReplicaTokenState.create(3, 0, 10)
        assert sync_group(state, 0) == {0}

    def test_allowance_expands_group(self):
        state = ReplicaTokenState.create(3, 0, 10)
        state.allowances[0][2] = 5
        assert sync_group(state, 0) == {0, 2}

    def test_zero_balance_convention(self):
        state = ReplicaTokenState.create(3, 0, 10)
        state.allowances[1][2] = 5  # account 1 is empty
        assert sync_group(state, 1) == {1}

    def test_negative_transient_balance_counts_as_empty(self):
        state = ReplicaTokenState.create(2, 0, 5)
        state.balances[1] = -2
        assert sync_group(state, 1) == {1}

    def test_levels_vector(self):
        state = ReplicaTokenState.create(3, 0, 10)
        state.allowances[0][1] = 1
        state.allowances[0][2] = 1
        assert sync_levels(state) == [3, 1, 1]


class TestTracker:
    def test_records_and_summarizes(self):
        tracker = GroupSizeTracker()
        state = ReplicaTokenState.create(2, 0, 5)
        tracker.record(1.0, state)
        state.allowances[0][1] = 5
        tracker.record(2.0, state)
        assert tracker.max_level_seen() == 2
        histogram = tracker.level_histogram()
        assert histogram[1] == 3  # account 1 twice + account 0 once
        assert histogram[2] == 1

    def test_empty_tracker(self):
        assert GroupSizeTracker().max_level_seen() == 1


class TestCoordinationCost:
    def test_owner_only_is_free(self):
        assert group_coordination_cost({0}) == 0

    def test_cost_grows_with_group(self):
        assert group_coordination_cost({0, 1}) == 2
        assert group_coordination_cost({0, 1, 2, 3}) == 6
