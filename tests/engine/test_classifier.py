"""The classifier's soundness contract against the semantic oracle.

The static fast path may never claim more reorderability than the
semantic ``PairKind`` oracle grants, at any reachable state:

* static COMMUTE   ⇒ oracle COMMUTE (exactly);
* static READ_ONLY ⇒ oracle READ_ONLY or COMMUTE;
* static CONFLICT  ⇒ unconstrained (the conservative fallback).

The hypothesis suites below drive random invocation pairs at random
reachable states for ERC20 (with extensions), k-shared asset transfer and
ERC721, through ``OpClassifier(validate=True)`` — which raises on any
contract violation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.commutativity import (
    CachedPairAnalyzer,
    Invocation,
    PairKind,
)
from repro.engine.classifier import OpClassifier
from repro.engine.mempool import PendingOp
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import Operation, op

N = 4  # accounts/processes in the generated universes


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ACCOUNT = st.integers(0, N - 1)
VALUE = st.integers(0, 6)


@st.composite
def erc20_invocation(draw):
    pid = draw(ACCOUNT)
    kind = draw(
        st.sampled_from(
            [
                "transfer",
                "transferFrom",
                "approve",
                "balanceOf",
                "allowance",
                "totalSupply",
                "increaseAllowance",
                "decreaseAllowance",
            ]
        )
    )
    if kind == "transfer":
        operation = Operation(kind, (draw(ACCOUNT), draw(VALUE)))
    elif kind == "transferFrom":
        operation = Operation(kind, (draw(ACCOUNT), draw(ACCOUNT), draw(VALUE)))
    elif kind in ("approve", "increaseAllowance", "decreaseAllowance"):
        operation = Operation(kind, (draw(ACCOUNT), draw(VALUE)))
    elif kind == "balanceOf":
        operation = Operation(kind, (draw(ACCOUNT),))
    elif kind == "allowance":
        operation = Operation(kind, (draw(ACCOUNT), draw(ACCOUNT)))
    else:
        operation = Operation("totalSupply")
    return pid, operation


@st.composite
def erc721_invocation(draw):
    pid = draw(ACCOUNT)
    kind = draw(
        st.sampled_from(
            [
                "ownerOf",
                "balanceOf",
                "transferFrom",
                "approve",
                "getApproved",
                "setApprovalForAll",
                "isApprovedForAll",
            ]
        )
    )
    token = st.integers(0, 2)
    if kind == "transferFrom":
        operation = Operation(kind, (draw(ACCOUNT), draw(ACCOUNT), draw(token)))
    elif kind == "approve":
        operation = Operation(kind, (draw(ACCOUNT), draw(token)))
    elif kind in ("ownerOf", "getApproved"):
        operation = Operation(kind, (draw(token),))
    elif kind == "balanceOf":
        operation = Operation(kind, (draw(ACCOUNT),))
    elif kind == "setApprovalForAll":
        operation = Operation(kind, (draw(ACCOUNT), draw(st.booleans())))
    else:
        operation = Operation(kind, (draw(ACCOUNT), draw(ACCOUNT)))
    return pid, operation


def _reach_state(object_type, prefix):
    """Apply a random prefix of valid ops to reach an arbitrary state."""
    state = object_type.initial_state()
    for pid, operation in prefix:
        state, _ = object_type.apply(state, pid, operation)
    return state


# ---------------------------------------------------------------------------
# Contract suites (validate=True raises on any soundness violation)
# ---------------------------------------------------------------------------


class TestSoundnessERC20:
    @settings(max_examples=300, deadline=None)
    @given(
        prefix=st.lists(erc20_invocation(), max_size=8),
        first=erc20_invocation(),
        second=erc20_invocation(),
    )
    def test_static_agrees_with_oracle(self, prefix, first, second):
        token = ERC20TokenType(N, total_supply=20, with_extensions=True)
        classifier = OpClassifier(token, validate=True)
        state = _reach_state(token, prefix)
        classifier.classify(
            PendingOp(0, first[0], first[1]),
            PendingOp(1, second[0], second[1]),
            state,
        )  # raises ClassifierValidationError on violation


class TestSoundnessAssetTransfer:
    @settings(max_examples=200, deadline=None)
    @given(
        data=st.data(),
        prefix=st.lists(
            st.tuples(ACCOUNT, ACCOUNT, ACCOUNT, VALUE), max_size=6
        ),
    )
    def test_static_agrees_with_oracle(self, data, prefix):
        # A 2-shared account 0 plus single-owner accounts.
        at = AssetTransferType(
            [10] * N, owner_map=[{0, 1}] + [{a} for a in range(1, N)]
        )
        classifier = OpClassifier(at, validate=True)
        state = _reach_state(
            at,
            [
                (pid, op("transfer", src, dst, val))
                for pid, src, dst, val in prefix
            ],
        )
        draw = data.draw
        ops = []
        for _ in range(2):
            kind = draw(
                st.sampled_from(["transfer", "balanceOf", "totalSupply"])
            )
            pid = draw(ACCOUNT)
            if kind == "transfer":
                operation = op(
                    "transfer", draw(ACCOUNT), draw(ACCOUNT), draw(VALUE)
                )
            elif kind == "balanceOf":
                operation = op("balanceOf", draw(ACCOUNT))
            else:
                operation = op("totalSupply")
            ops.append((pid, operation))
        classifier.classify(
            PendingOp(0, ops[0][0], ops[0][1]),
            PendingOp(1, ops[1][0], ops[1][1]),
            state,
        )


class TestSoundnessERC721:
    @settings(max_examples=200, deadline=None)
    @given(
        prefix=st.lists(erc721_invocation(), max_size=8),
        first=erc721_invocation(),
        second=erc721_invocation(),
    )
    def test_static_agrees_with_oracle(self, prefix, first, second):
        nft = ERC721TokenType(N, initial_owners=[0, 1, 2])
        classifier = OpClassifier(nft, validate=True)
        state = _reach_state(nft, prefix)
        classifier.classify(
            PendingOp(0, first[0], first[1]),
            PendingOp(1, second[0], second[1]),
            state,
        )


# ---------------------------------------------------------------------------
# Classifier mechanics
# ---------------------------------------------------------------------------


class TestClassifierMechanics:
    def test_pair_cache_keyed_on_footprints(self):
        """Same op shapes with different values share one cache entry."""
        token = ERC20TokenType(N, total_supply=20)
        classifier = OpClassifier(token)
        a1 = PendingOp(0, 0, op("transfer", 1, 2))
        b1 = PendingOp(1, 2, op("transfer", 3, 2))
        a2 = PendingOp(2, 0, op("transfer", 1, 9))  # same accounts, new value
        b2 = PendingOp(3, 2, op("transfer", 3, 9))
        assert classifier.classify(a1, b1) is PairKind.COMMUTE
        hits_before = classifier.stats.pair_cache_hits
        assert classifier.classify(a2, b2) is PairKind.COMMUTE
        assert classifier.stats.pair_cache_hits == hits_before + 1

    def test_unknown_object_type_falls_back_to_conflict(self):
        from repro.objects.erc777 import ERC777TokenType

        erc777 = ERC777TokenType([5] * N)
        classifier = OpClassifier(erc777)
        a = PendingOp(0, 0, op("balanceOf", 1))
        b = PendingOp(1, 1, op("balanceOf", 2))
        assert classifier.classify(a, b) is PairKind.CONFLICT
        assert classifier.stats.fallback_pairs == 1

    def test_needs_consensus_same_process_never(self):
        token = ERC20TokenType(N, total_supply=20)
        classifier = OpClassifier(token)
        a = PendingOp(0, 0, op("transfer", 1, 2))
        b = PendingOp(1, 0, op("transfer", 2, 2))
        assert not classifier.needs_consensus(a, b)

    def test_needs_consensus_two_spenders(self):
        token = ERC20TokenType(N, total_supply=20)
        classifier = OpClassifier(token)
        a = PendingOp(0, 1, op("transferFrom", 0, 2, 2))
        b = PendingOp(1, 2, op("transferFrom", 0, 3, 2))
        assert classifier.needs_consensus(a, b)

    def test_credit_enabling_spend_needs_no_consensus(self):
        """transfer into b vs b's own spend: ordered, but consensus-free
        (the consensus-number-1 regime)."""
        token = ERC20TokenType(N, total_supply=20)
        classifier = OpClassifier(token)
        credit = PendingOp(0, 0, op("transfer", 1, 2))
        spend = PendingOp(1, 1, op("transfer", 2, 2))
        assert classifier.classify(credit, spend) is PairKind.CONFLICT
        assert not classifier.needs_consensus(credit, spend)

    def test_conflict_precision_reported(self):
        token = ERC20TokenType(N, total_supply=20)
        classifier = OpClassifier(token, validate=True)
        state = token.initial_state()
        a = PendingOp(0, 1, op("transferFrom", 0, 2, 2))
        b = PendingOp(1, 2, op("transferFrom", 0, 3, 2))
        classifier.classify(a, b, state)
        snapshot = classifier.stats.as_dict()
        assert snapshot["validated"] == 1
        assert 0.0 <= snapshot["conflict_precision"] <= 1.0


class TestCachedPairAnalyzer:
    def test_cache_hits_and_symmetry(self):
        token = ERC20TokenType(N, total_supply=20)
        oracle = CachedPairAnalyzer(token)
        state = token.initial_state()
        first = Invocation(0, op("transfer", 1, 2))
        second = Invocation(1, op("transfer", 2, 2))
        kind = oracle.kind(state, first, second)
        assert oracle.misses == 1
        assert oracle.kind(state, second, first) == kind
        assert oracle.hits == 1
        assert len(oracle) == 1
        oracle.clear()
        assert len(oracle) == 0
