"""Op-granular DAG scheduling: structure, equivalence, and identity tests.

Machine-checked guarantees of ``dag_scheduling=True``:

* **DAG structure** — :class:`~repro.engine.conflict_graph.ComponentDAG`
  orients every non-commute edge by submission order, its levels are
  antichains, and critical path / width report the component's intrinsic
  makespan bound and parallelism;
* **linear extension** — every DAG plan's ``apply_order`` respects every
  component DAG edge (the serial-equivalence precondition);
* **serial equivalence** — for *any* lane count, window size, mix, and
  pipeline depth, the DAG-scheduled final state and every response equal
  a plain sequential execution in submission order;
* **chain-atomic identity** — ``dag_scheduling=False`` (the default) is
  the historical executor bit for bit, stats dictionaries included.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.commutativity import PairKind
from repro.config import EngineConfig
from repro.engine import (
    BatchExecutor,
    ComponentDAG,
    PipelinedExecutor,
    ShardPlanner,
    dag_list_schedule,
)
from repro.engine.conflict_graph import ConflictGraph
from repro.engine.classifier import OpClassifier
from repro.engine.mempool import Mempool
from repro.errors import EngineError
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


class TestComponentDAG:
    def test_path_component_is_a_total_order(self):
        dag = ComponentDAG.over(
            [0, 1, 2], {(0, 1): PairKind.CONFLICT, (1, 2): PairKind.CONFLICT}
        )
        assert dag.critical_path == 3
        assert dag.width == 1
        assert dag.levels() == [[0], [1], [2]]

    def test_commuting_pairs_carry_no_edge(self):
        # 0-1 and 0-2 conflict; 1 and 2 commute (no edge): width 2.
        dag = ComponentDAG.over(
            [0, 1, 2], {(0, 1): PairKind.CONFLICT, (0, 2): PairKind.CONFLICT}
        )
        assert dag.critical_path == 2
        assert dag.width == 2
        assert dag.levels() == [[0], [1, 2]]
        assert dag.preds[1] == (0,) and dag.preds[2] == (0,)

    def test_edges_orient_by_submission_order(self):
        dag = ComponentDAG.over(
            [3, 7, 9], {(3, 9): PairKind.CONFLICT, (7, 9): PairKind.READ_ONLY}
        )
        assert dag.succs[3] == (9,)
        assert dag.succs[7] == (9,)
        assert dag.preds[9] == (3, 7)
        assert dag.bottom_levels() == {3: 2, 7: 2, 9: 1}

    def test_levels_are_antichains(self):
        edges = {
            (0, 2): PairKind.CONFLICT,
            (1, 2): PairKind.CONFLICT,
            (2, 4): PairKind.CONFLICT,
            (3, 4): PairKind.CONFLICT,
        }
        dag = ComponentDAG.over([0, 1, 2, 3, 4], edges)
        for wave in dag.levels():
            for a in wave:
                for b in wave:
                    if a < b:
                        assert (a, b) not in edges

    def test_foreign_edges_are_ignored(self):
        dag = ComponentDAG.over(
            [0, 1], {(0, 1): PairKind.CONFLICT, (2, 3): PairKind.CONFLICT}
        )
        assert dag.size == 2
        assert dag.succs[0] == (1,)

    def test_window_dags_match_multi_op_components(self):
        token = ERC20TokenType(8, total_supply=80)
        classifier = OpClassifier(token)
        pool = Mempool()
        for pid, operation in [
            (0, op("transfer", 1, 2)),   # observes/adds bal 0
            (0, op("transfer", 2, 1)),   # conflicts with the first
            (3, op("transfer", 4, 1)),   # independent component
            (5, op("balanceOf", 6)),     # singleton
        ]:
            pool.submit(pid, operation)
        graph = ConflictGraph.build(classifier, pool.pop_window(8))
        chains = [c for c in graph.components() if len(c) > 1]
        dags = graph.component_dags()
        assert [dag.nodes for dag in dags] == [tuple(c) for c in chains]


class TestDagPlanner:
    def _window(self, items, token):
        classifier = OpClassifier(token)
        pool = Mempool()
        for item in items:
            pool.submit(item.pid, item.operation)
        ops = pool.pop_window(len(items))
        graph = ConflictGraph.build(classifier, ops)
        chains = [c for c in graph.components() if len(c) > 1]
        singles = [c[0] for c in graph.components() if len(c) == 1]
        return classifier, ops, graph, chains, singles

    def test_apply_order_is_a_linear_extension(self):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=3, mix=APPROVAL_HEAVY_MIX
        ).generate(60)
        classifier, ops, graph, chains, singles = self._window(items, token)
        planner = ShardPlanner(4, dag_scheduling=True)
        plan = planner.plan(
            classifier,
            [[ops[i] for i in chain] for chain in chains],
            [ops[i] for i in singles],
            dags=graph.component_dags(),
        )
        assert plan.apply_order is not None
        position = {op.seq: k for k, op in enumerate(plan.apply_order)}
        for (a, b) in graph.edges:
            assert position[ops[a].seq] < position[ops[b].seq]

    def test_dag_makespan_beats_chain_atomic_on_wide_components(self):
        # k approvals (to distinct spenders: mutually commuting) each
        # enabling one transferFrom (the transferFroms chain on the
        # debited balance): the chain-atomic plan pays the component's
        # full op count on one lane; the DAG plan runs the approvals
        # lane-parallel against the transferFrom chain.
        token = ERC20TokenType(8, total_supply=80)
        items = [
            WorkloadItem(0, op("approve", spender, 5))
            for spender in range(1, 6)
        ] + [
            WorkloadItem(spender, op("transferFrom", 0, 7, 1))
            for spender in range(1, 6)
        ]
        classifier, ops, graph, chains, singles = self._window(items, token)
        assert len(chains) == 1 and len(chains[0]) == len(items)
        atomic = ShardPlanner(4).plan(
            classifier, [[ops[i] for i in chains[0]]], []
        )
        dag = ShardPlanner(4, dag_scheduling=True).plan(
            classifier,
            [[ops[i] for i in chains[0]]],
            [],
            dags=graph.component_dags(),
        )
        assert atomic.critical_path == len(items)
        assert dag.critical_path < atomic.critical_path
        assert graph.component_dags()[0].width >= 2

    def test_pure_conflict_chain_gains_nothing(self):
        token = ERC20TokenType(4, total_supply=40)
        items = [WorkloadItem(0, op("transfer", 1, 1)) for _ in range(5)]
        classifier, ops, graph, chains, singles = self._window(items, token)
        dag = ShardPlanner(4, dag_scheduling=True).plan(
            classifier,
            [[ops[i] for i in chain] for chain in chains],
            [ops[i] for i in singles],
            dags=graph.component_dags(),
        )
        assert dag.critical_path == 5  # a total order stays a total order

    def test_dag_flag_off_is_bit_identical(self):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=9, mix=SPENDER_HEAVY_MIX
        ).generate(80)
        classifier, ops, graph, chains, singles = self._window(items, token)
        chain_ops = [[ops[i] for i in chain] for chain in chains]
        single_ops = [ops[i] for i in singles]
        default = ShardPlanner(4).plan(classifier, chain_ops, single_ops)
        off = ShardPlanner(4, dag_scheduling=False).plan(
            classifier, chain_ops, single_ops, dags=graph.component_dags()
        )
        assert off == default
        assert off.apply_order is None

    def test_mismatched_dags_are_rejected(self):
        planner = ShardPlanner(2, dag_scheduling=True)
        with pytest.raises(EngineError):
            planner.plan(None, [[]], [], dags=[])


class TestBackfill:
    """Insertion/backfill in :func:`dag_list_schedule`: the idle interval
    a floored task leaves behind is a gap later ready tasks may fill."""

    def test_singleton_backfills_a_floored_lanes_gap(self):
        lane_free = [0]
        out = dag_list_schedule(
            seqs=[0, 1],
            preds=[(), ()],
            priorities=[2, 1],
            lane_free=lane_free,
            floors=[5, 0],
        )
        # The high-priority floored task runs at its floor; the singleton
        # no longer queues behind it but fills the [0, 5) idle interval.
        assert out == [(5, 6, 0), (0, 1, 0)]
        assert lane_free == [6]
        assert all(isinstance(t, int) for s, f, _ in out for t in (s, f))

    def test_residual_gap_slivers_stay_fillable(self):
        out = dag_list_schedule(
            seqs=[0, 1, 2, 3],
            preds=[(), (), (), ()],
            priorities=[9, 1, 1, 1],
            lane_free=[0],
            floors=[5, 0, 0, 0],
        )
        # Each fill splits the gap in place; three singletons pack the
        # front of the [0, 5) interval back to back.
        assert out[0] == (5, 6, 0)
        assert [out[i][0] for i in (1, 2, 3)] == [0, 1, 2]

    def test_backfill_honors_precedence(self):
        out = dag_list_schedule(
            seqs=[0, 1, 2],
            preds=[(), (0,), ()],
            priorities=[3, 2, 1],
            lane_free=[0],
            floors=[5, 0, 0],
        )
        # Task 1 depends on the floored task, so the gap cannot hold it
        # (est = the predecessor's finish); only the free singleton fills.
        assert out[0] == (5, 6, 0)
        assert out[1] == (6, 7, 0)
        assert out[2] == (0, 1, 0)

    def test_no_floors_is_plain_list_scheduling(self):
        out = dag_list_schedule(
            seqs=[0, 1, 2, 3],
            preds=[(), (), (), ()],
            priorities=[1, 1, 1, 1],
            lane_free=[0, 0],
        )
        # Without floors no gaps ever open: contiguous packing, lane
        # choice deterministic by (start, free time, lane id).
        assert out == [(0, 1, 0), (0, 1, 1), (1, 2, 0), (1, 2, 1)]


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_barrier_engine_matches_spec(self, mix_name):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=41, mix=MIXES[mix_name]
        ).generate(300)
        ref_state, ref_responses = serial_reference(token, items)
        engine = BatchExecutor(
            ERC20TokenType(12, total_supply=240),
            num_lanes=4,
            window=32,
            dag_scheduling=True,
        )
        state, responses, stats = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses
        assert stats.dag_speedup >= 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 6),
        lanes=st.sampled_from([1, 2, 4, 8]),
        window=st.integers(4, 48),
    )
    def test_pipelined_hypothesis_sweep(self, seed, depth, lanes, window):
        token = ERC20TokenType(8, total_supply=80)
        items = TokenWorkloadGenerator(
            8, seed=seed, mix=SPENDER_HEAVY_MIX, hotspot_fraction=0.4,
            hotspot_accounts=2,
        ).generate(100)
        ref_state, ref_responses = serial_reference(token, items)
        engine = PipelinedExecutor(
            ERC20TokenType(8, total_supply=80),
            pipeline_depth=depth,
            num_lanes=lanes,
            window=window,
            dag_scheduling=True,
        )
        state, responses, _ = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 5))
    def test_erc721_races(self, seed, depth):
        rng = random.Random(seed)
        factory = lambda: ERC721TokenType(  # noqa: E731
            4, initial_owners=[0, 1, 2, 3, 0, 1]
        )
        names = ["transferFrom", "approve", "ownerOf", "setApprovalForAll"]
        items = []
        for _ in range(60):
            name = rng.choice(names)
            pid = rng.randrange(4)
            if name == "transferFrom":
                operation = op(
                    name, rng.randrange(4), rng.randrange(4), rng.randrange(6)
                )
            elif name == "approve":
                operation = op(name, rng.randrange(4), rng.randrange(6))
            elif name == "ownerOf":
                operation = op(name, rng.randrange(6))
            else:
                operation = op(name, rng.randrange(4), rng.random() < 0.5)
            items.append(WorkloadItem(pid, operation))
        ref_state, ref_responses = serial_reference(factory(), items)
        engine = PipelinedExecutor(
            factory(), pipeline_depth=depth, num_lanes=4, window=16,
            dag_scheduling=True,
        )
        state, responses, _ = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), lanes=st.sampled_from([1, 2, 4]))
    def test_asset_transfer_shared_accounts(self, seed, lanes):
        rng = random.Random(seed)
        owner_map = [{0, 1}, {1}, {2}, {3}, {0, 3}]
        factory = lambda: AssetTransferType(  # noqa: E731
            [20] * 5, owner_map=owner_map, num_processes=4
        )
        items = [
            WorkloadItem(
                rng.randrange(4),
                op(
                    "transfer",
                    rng.randrange(5),
                    rng.randrange(5),
                    rng.randint(0, 6),
                ),
            )
            for _ in range(80)
        ]
        ref_state, ref_responses = serial_reference(factory(), items)
        engine = BatchExecutor(
            factory(), num_lanes=lanes, window=16, dag_scheduling=True
        )
        state, responses, _ = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses


class TestIdentityAndStats:
    def test_dag_off_is_the_historical_engine(self):
        # The legacy() preset and the explicit pre-flip kwargs are the
        # same engine bit for bit — the chain-atomic path stayed intact
        # under the fast-path default flip.
        items = TokenWorkloadGenerator(
            12, seed=37, mix=APPROVAL_HEAVY_MIX
        ).generate(240)
        default = BatchExecutor(
            ERC20TokenType(12, total_supply=240),
            EngineConfig.legacy(num_lanes=4, window=32),
        )
        explicit = BatchExecutor(
            ERC20TokenType(12, total_supply=240),
            num_lanes=4,
            window=32,
            dag_scheduling=False,
            team_threshold=0,
            lane_ttl=None,
            split_sync=False,
        )
        d_state, d_responses, d_stats = default.run_workload(items)
        e_state, e_responses, e_stats = explicit.run_workload(items)
        assert e_state == d_state
        assert e_responses == d_responses
        assert e_stats.as_dict() == d_stats.as_dict()
        assert e_stats.dag_speedup == 1.0
        assert e_stats.max_dag_width == 0

    def test_depth_one_pipeline_matches_dag_barrier_exactly(self):
        items = TokenWorkloadGenerator(
            10, seed=5, mix=SPENDER_HEAVY_MIX
        ).generate(200)
        kwargs = dict(num_lanes=4, window=32, dag_scheduling=True)
        barrier = BatchExecutor(ERC20TokenType(10, total_supply=200), **kwargs)
        piped = PipelinedExecutor(
            ERC20TokenType(10, total_supply=200), pipeline_depth=1, **kwargs
        )
        b = barrier.run_workload(items)
        p = piped.run_workload(items)
        assert p[:2] == b[:2]
        assert p[2].as_dict() == b[2].as_dict()

    def test_dag_shortens_contended_rounds(self):
        items = TokenWorkloadGenerator(
            16, seed=7, mix=APPROVAL_HEAVY_MIX
        ).generate(400)
        atomic = BatchExecutor(
            ERC20TokenType(16, total_supply=1600),
            num_lanes=4,
            window=64,
            dag_scheduling=False,
        ).run_workload(items)[2]
        dag = BatchExecutor(
            ERC20TokenType(16, total_supply=1600),
            num_lanes=4,
            window=64,
            dag_scheduling=True,
        ).run_workload(items)[2]
        assert dag.virtual_time < atomic.virtual_time
        assert dag.dag_speedup > 1.0
        assert dag.max_dag_width >= 2
        assert dag.max_dag_critical_path >= 1
        assert dag.dag_chain_ops > dag.dag_critical_ops

    def test_dag_stats_survive_the_pipeline(self):
        items = TokenWorkloadGenerator(
            16, seed=11, mix=APPROVAL_HEAVY_MIX
        ).generate(300)
        _, _, stats = PipelinedExecutor(
            ERC20TokenType(16, total_supply=1600),
            pipeline_depth=3,
            num_lanes=4,
            window=64,
            dag_scheduling=True,
        ).run_workload(items)
        assert stats.max_dag_width >= 2
        assert stats.dag_speedup > 1.0
