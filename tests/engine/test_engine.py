"""Unit tests for the engine's moving parts (mempool, graph, shards,
escalation, executor plumbing)."""

from __future__ import annotations

import pytest

from repro.analysis.commutativity import PairKind
from repro.engine import (
    BatchExecutor,
    ConflictGraph,
    ConsensusEscalator,
    Mempool,
    OpClassifier,
    PendingOp,
    ShardPlanner,
)
from repro.errors import EngineError, InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import op
from repro.workloads import (
    EXAMPLE1_RESPONSES,
    OWNER_ONLY_MIX,
    TokenWorkloadGenerator,
    example1_trace,
)

N = 8


@pytest.fixture
def token():
    return ERC20TokenType(N, total_supply=10 * N)


class TestMempool:
    def test_sequence_stamps_are_submission_order(self):
        pool = Mempool()
        a = pool.submit(0, op("transfer", 1, 2))
        b = pool.submit(1, op("balanceOf", 0))
        assert (a.seq, b.seq) == (0, 1)
        assert len(pool) == 2
        assert pool.peek() == a

    def test_pop_window_is_fifo(self):
        pool = Mempool()
        submitted = [pool.submit(0, op("balanceOf", 0)) for _ in range(5)]
        assert pool.pop_window(3) == submitted[:3]
        assert pool.pop_window(10) == submitted[3:]
        assert not pool

    def test_feed_workload_items(self):
        pool = Mempool()
        items = TokenWorkloadGenerator(N, seed=1).generate(7)
        pending = pool.feed(items)
        assert [p.operation for p in pending] == [i.operation for i in items]
        assert pool.submitted == 7

    def test_rejects_non_operations(self):
        with pytest.raises(InvalidArgumentError):
            Mempool().submit(0, "transfer")

    def test_rejects_bad_window(self):
        with pytest.raises(InvalidArgumentError):
            Mempool().pop_window(0)


class TestConflictGraph:
    def test_components_split_independent_accounts(self, token):
        classifier = OpClassifier(token)
        ops = [
            PendingOp(0, 0, op("transfer", 1, 2)),  # chain {0,1}: bal(1)
            PendingOp(1, 1, op("transfer", 2, 2)),
            PendingOp(2, 4, op("transfer", 5, 2)),  # independent singleton
            PendingOp(3, 6, op("balanceOf", 7)),  # singleton read
        ]
        graph = ConflictGraph.build(classifier, ops)
        assert graph.components() == [[0, 1], [2], [3]]
        assert graph.kind(0, 1) is PairKind.CONFLICT
        assert graph.kind(2, 3) is PairKind.COMMUTE
        assert graph.conflict_edges == 1
        assert graph.conflict_rate() == pytest.approx(1 / 6)
        assert graph.neighbors(0) == [1]
        assert graph.degree(3) == 0

    def test_commute_pairs_counted(self, token):
        classifier = OpClassifier(token)
        ops = [PendingOp(i, i, op("balanceOf", i)) for i in range(4)]
        graph = ConflictGraph.build(classifier, ops)
        assert graph.commute_pairs == 6
        assert graph.read_only_edges == 0


class TestShardPlanner:
    def test_plan_is_deterministic(self, token):
        classifier = OpClassifier(token)
        singles = [
            PendingOp(i, i % N, op("balanceOf", i % N)) for i in range(20)
        ]
        chains = [
            [PendingOp(100 + j, 0, op("transfer", 1, 1)) for j in range(3)]
        ]
        planner = ShardPlanner(4)
        p1 = planner.plan(classifier, chains, singles)
        p2 = planner.plan(classifier, chains, singles)
        assert [[o.seq for o in lane] for lane in p1.lanes] == [
            [o.seq for o in lane] for lane in p2.lanes
        ]

    def test_chains_stay_intact_and_ordered(self, token):
        classifier = OpClassifier(token)
        chain = [PendingOp(j, 0, op("transfer", 1, 1)) for j in range(4)]
        plan = ShardPlanner(3).plan(classifier, [chain], [])
        lanes_with_ops = [lane for lane in plan.lanes if lane]
        assert len(lanes_with_ops) == 1
        assert [o.seq for o in lanes_with_ops[0]] == [0, 1, 2, 3]

    def test_hot_account_burst_is_split(self, token):
        """Commuting ops anchored on one account spread across lanes."""
        classifier = OpClassifier(token)
        burst = [PendingOp(i, i % N, op("balanceOf", 0)) for i in range(12)]
        plan = ShardPlanner(4).plan(classifier, [], burst)
        assert plan.hot_accounts == [0]
        assert plan.critical_path == 3  # perfectly balanced
        no_split = ShardPlanner(4, hot_split=False).plan(classifier, [], burst)
        assert no_split.critical_path == 12  # all pinned to the home lane

    def test_all_ops_preserved(self, token):
        classifier = OpClassifier(token)
        singles = [
            PendingOp(i, i % N, op("balanceOf", i % N)) for i in range(17)
        ]
        chain = [PendingOp(50 + j, 1, op("transfer", 2, 1)) for j in range(5)]
        plan = ShardPlanner(4).plan(classifier, [chain], singles)
        seqs = sorted(o.seq for lane in plan.lanes for o in lane)
        assert seqs == sorted([o.seq for o in singles] + [o.seq for o in chain])
        assert plan.size == 22

    def test_rejects_zero_lanes(self):
        with pytest.raises(EngineError):
            ShardPlanner(0)


class TestEscalation:
    def test_orders_in_submission_order_with_costs(self):
        escalator = ConsensusEscalator(num_replicas=4, seed=3)
        ops = [PendingOp(i, i % 4, op("transfer", 1, 1)) for i in range(5)]
        result = escalator.order(ops)
        assert result.ordered == ops
        assert result.virtual_time > 0
        # 3-phase quorum protocol: strictly more than one message per op.
        assert result.messages > len(ops)
        assert escalator.batches == 1

    def test_empty_batch_is_free(self):
        escalator = ConsensusEscalator()
        result = escalator.order([])
        assert result.ordered == []
        assert result.virtual_time == 0.0
        assert result.messages == 0

    def test_clock_accumulates_across_batches(self):
        escalator = ConsensusEscalator(seed=5)
        escalator.order([PendingOp(0, 0, op("transfer", 1, 1))])
        t1 = escalator.simulator.now
        escalator.order([PendingOp(1, 1, op("transfer", 2, 1))])
        assert escalator.simulator.now > t1

    def test_rejects_tiny_cluster(self):
        with pytest.raises(EngineError):
            ConsensusEscalator(num_replicas=3)


class TestBatchExecutor:
    def test_example1_trace(self):
        """The paper's Example 1 executes with its published responses."""
        token = ERC20TokenType(3, total_supply=10)
        engine = BatchExecutor(token, num_lanes=2, window=4)
        state, responses, stats = engine.run_workload(example1_trace())
        assert tuple(responses) == EXAMPLE1_RESPONSES
        assert state.balances == (8, 2, 0)
        assert stats.ops_executed == 4

    def test_owner_only_traffic_never_escalates(self, token):
        engine = BatchExecutor(token, num_lanes=4, window=32)
        items = TokenWorkloadGenerator(N, seed=11, mix=OWNER_ONLY_MIX).generate(
            200
        )
        _, _, stats = engine.run_workload(items)
        assert stats.escalated_ops == 0
        assert stats.escalation_messages == 0

    def test_two_spender_race_escalates(self, token):
        engine = BatchExecutor(token, num_lanes=2, window=8)
        engine.submit(0, op("approve", 1, 5))
        engine.run()
        engine.submit(1, op("transferFrom", 0, 2, 2))
        engine.submit(0, op("transfer", 3, 2))  # owner spend: 2nd spender
        stats = engine.run()
        assert stats.escalated_ops >= 2
        assert stats.escalation_messages > 0

    def test_stats_round_trip(self, token):
        engine = BatchExecutor(token, num_lanes=4, window=16)
        items = TokenWorkloadGenerator(N, seed=2).generate(64)
        _, _, stats = engine.run_workload(items)
        snapshot = stats.as_dict()
        assert snapshot["ops_executed"] == 64
        assert snapshot["waves"] == stats.waves == len(stats.rounds)
        assert (
            snapshot["wave_ops"]
            + snapshot["barrier_ops"]
            + snapshot["escalated_ops"]
            == 64
        )
        assert snapshot["virtual_time"] == pytest.approx(engine.clock)
        assert 0.0 <= snapshot["escalation_rate"] <= 1.0

    def test_step_returns_none_when_drained(self, token):
        engine = BatchExecutor(token)
        assert engine.step() is None

    def test_rejects_bad_config(self, token):
        with pytest.raises(EngineError):
            BatchExecutor(token, num_lanes=0)
        with pytest.raises(EngineError):
            BatchExecutor(token, window=0)

    def test_run_workload_on_reused_engine_scopes_responses(self, token):
        engine = BatchExecutor(token, num_lanes=2, window=8)
        first = TokenWorkloadGenerator(N, seed=1).generate(10)
        second = TokenWorkloadGenerator(N, seed=2).generate(10)
        _, r1, _ = engine.run_workload(first)
        _, r2, _ = engine.run_workload(second)
        assert len(r1) == 10 and len(r2) == 10
        assert engine.mempool.submitted == 20

    def test_responses_in_order(self, token):
        engine = BatchExecutor(token, num_lanes=4, window=8)
        engine.submit(1, op("balanceOf", 0))
        engine.submit(0, op("transfer", 2, 3))
        engine.submit(2, op("balanceOf", 2))
        engine.run()
        responses = engine.responses_in_order()
        assert responses == [10 * N, True, 3]
