"""Engine determinism and serial equivalence (the ISSUE's property suite).

Two machine-checked guarantees:

* **lane determinism** — the same seed and workload produce the *same*
  final token state (and responses) for 1, 2, 4 and 8 lanes;
* **serial equivalence** — the engine's final state and every response
  equal a plain sequential execution of the workload, in submission
  order, against the object's sequential specification.

Both are exercised across workload mixes, account skews (uniform, Zipf,
hot-spot), window sizes, and object types.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
)

LANE_COUNTS = (1, 2, 4, 8)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def engine_run(object_type_factory, items, lanes, window=32, **kwargs):
    engine = BatchExecutor(
        object_type_factory(), num_lanes=lanes, window=window, **kwargs
    )
    state, responses, stats = engine.run_workload(items)
    return state, responses, stats


class TestLaneDeterminism:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_final_state_identical_across_lane_counts(self, mix_name):
        factory = lambda: ERC20TokenType(12, total_supply=240)  # noqa: E731
        items = TokenWorkloadGenerator(
            12, seed=29, mix=MIXES[mix_name]
        ).generate(300)
        outcomes = [
            engine_run(factory, items, lanes)[:2] for lanes in LANE_COUNTS
        ]
        first_state, first_responses = outcomes[0]
        for state, responses in outcomes[1:]:
            assert state == first_state
            assert responses == first_responses

    def test_same_seed_same_everything(self):
        factory = lambda: ERC20TokenType(10, total_supply=100)  # noqa: E731
        items = TokenWorkloadGenerator(10, seed=5).generate(150)
        s1, r1, st1 = engine_run(factory, items, 4)
        s2, r2, st2 = engine_run(factory, items, 4)
        assert (s1, r1) == (s2, r2)
        assert st1.as_dict() == st2.as_dict()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(1, 80),
        zipf=st.sampled_from([0.0, 1.2]),
    )
    def test_determinism_under_random_seeds_and_windows(
        self, seed, window, zipf
    ):
        factory = lambda: ERC20TokenType(8, total_supply=80)  # noqa: E731
        items = TokenWorkloadGenerator(8, seed=seed, zipf_s=zipf).generate(120)
        states = {
            engine_run(factory, items, lanes, window=window)[0]
            for lanes in LANE_COUNTS
        }
        assert len(states) == 1


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("lanes", LANE_COUNTS)
    def test_erc20_state_and_responses_match_spec(self, mix_name, lanes):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=71, mix=MIXES[mix_name]
        ).generate(300)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = engine_run(
            lambda: ERC20TokenType(12, total_supply=240), items, lanes
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        lanes=st.sampled_from(LANE_COUNTS),
        hotspot=st.sampled_from([0.0, 0.6]),
    )
    def test_erc20_hypothesis_sweep(self, seed, lanes, hotspot):
        token = ERC20TokenType(8, total_supply=80)
        items = TokenWorkloadGenerator(
            8,
            seed=seed,
            mix=SPENDER_HEAVY_MIX,
            hotspot_fraction=hotspot,
            hotspot_accounts=2,
        ).generate(100)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = engine_run(
            lambda: ERC20TokenType(8, total_supply=80), items, lanes
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), lanes=st.sampled_from(LANE_COUNTS))
    def test_asset_transfer_shared_accounts(self, seed, lanes):
        import random

        rng = random.Random(seed)
        owner_map = [{0, 1}, {1}, {2}, {3}, {0, 3}]
        factory = lambda: AssetTransferType(  # noqa: E731
            [20] * 5, owner_map=owner_map, num_processes=4
        )
        items = [
            WorkloadItem(
                rng.randrange(4),
                op(
                    "transfer",
                    rng.randrange(5),
                    rng.randrange(5),
                    rng.randint(0, 6),
                ),
            )
            for _ in range(80)
        ]
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = engine_run(factory, items, lanes, window=16)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), lanes=st.sampled_from(LANE_COUNTS))
    def test_erc721_races(self, seed, lanes):
        import random

        rng = random.Random(seed)
        factory = lambda: ERC721TokenType(4, initial_owners=[0, 1, 2, 3, 0, 1])  # noqa: E731
        names = ["transferFrom", "approve", "ownerOf", "setApprovalForAll"]
        items = []
        for _ in range(60):
            name = rng.choice(names)
            pid = rng.randrange(4)
            if name == "transferFrom":
                operation = op(
                    name, rng.randrange(4), rng.randrange(4), rng.randrange(6)
                )
            elif name == "approve":
                operation = op(name, rng.randrange(4), rng.randrange(6))
            elif name == "ownerOf":
                operation = op(name, rng.randrange(6))
            else:
                operation = op(name, rng.randrange(4), rng.random() < 0.5)
            items.append(WorkloadItem(pid, operation))
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = engine_run(factory, items, lanes, window=16)
        assert state == ref_state
        assert responses == ref_responses


class TestValidatedRuns:
    """Full runs with oracle validation on: every static verdict the
    engine acts on is cross-checked at the window state."""

    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_validated_against_oracle(self, mix_name):
        factory = lambda: ERC20TokenType(10, total_supply=200)  # noqa: E731
        items = TokenWorkloadGenerator(
            10, seed=13, mix=MIXES[mix_name]
        ).generate(200)
        _, _, stats = engine_run(factory, items, 4, validate=True)
        assert stats.ops_executed == 200
