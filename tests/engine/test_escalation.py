"""Escalation message accounting (the ISSUE's satellite test).

The engine's claim is quantitative: escalated traffic pays the full
three-phase, ``O(n²)``-message pattern of the leader-based total order
(:mod:`repro.net.total_order`).  These tests pin the bill down exactly —
for ``k`` operations sequenced in ``b`` proposal batches by an ``n``-replica
cluster:

* ``k``  ``to_submit`` messages (one per operation, client → leader),
* ``b·n``  ``to_propose``  (leader broadcast per batch),
* ``b·n²`` ``to_prepare`` and ``b·n²`` ``to_commit`` (all-to-all quorum
  phases),

so ``messages = k + b·(n + 2n²)``.  The leader pipelines one proposal at a
time: the first submission proposes alone, later submissions accumulate
while it is in flight — hence ``b = 1 + ceil((k−1)/max_batch)`` for
``k > 1``.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import BatchExecutor, ConsensusEscalator, PendingOp
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import op


def expected_bill(ops: int, replicas: int, max_batch: int) -> tuple[int, int]:
    """``(messages, batches)`` of one escalation of ``ops`` operations."""
    batches = 1 if ops == 1 else 1 + math.ceil((ops - 1) / max_batch)
    return ops + batches * (replicas + 2 * replicas * replicas), batches


def ordered_batch(count: int) -> list[PendingOp]:
    return [PendingOp(i, i % 3, op("transfer", 1, 1)) for i in range(count)]


class TestQuadraticBill:
    @pytest.mark.parametrize("replicas", [4, 7])
    @pytest.mark.parametrize("count", [1, 2, 5, 8, 64, 65, 130])
    def test_message_total_matches_three_phase_pattern(self, replicas, count):
        escalator = ConsensusEscalator(
            num_replicas=replicas, seed=1, max_batch=64
        )
        result = escalator.order(ordered_batch(count))
        want, _ = expected_bill(count, replicas, max_batch=64)
        assert result.messages == want
        assert escalator.total_messages == want

    @pytest.mark.parametrize("max_batch", [1, 4, 64])
    def test_per_phase_counts(self, max_batch):
        replicas, count = 4, 10
        escalator = ConsensusEscalator(
            num_replicas=replicas, seed=2, max_batch=max_batch
        )
        escalator.order(ordered_batch(count))
        _, batches = expected_bill(count, replicas, max_batch)
        by_type = escalator.network.stats.by_type
        assert by_type["to_submit"] == count
        assert by_type["to_propose"] == batches * replicas
        # The two quorum phases are the O(n²) part, and they dominate.
        assert by_type["to_prepare"] == batches * replicas * replicas
        assert by_type["to_commit"] == batches * replicas * replicas

    def test_bill_accumulates_across_batches(self):
        escalator = ConsensusEscalator(num_replicas=4, seed=3)
        first = escalator.order(ordered_batch(3))
        second = escalator.order(ordered_batch(5))
        want3, _ = expected_bill(3, 4, 64)
        want5, _ = expected_bill(5, 4, 64)
        assert (first.messages, second.messages) == (want3, want5)
        assert escalator.total_messages == want3 + want5
        assert escalator.batches == 2


class TestEngineLevelAccounting:
    def test_round_escalation_bill_is_exactly_the_consensus_bill(self):
        """An engine round's escalation_messages equals the closed-form
        three-phase bill for the number of operations it escalated."""
        token = ERC20TokenType(8, total_supply=80)
        # team_threshold=0: the group must pay the global consensus lane
        # (the fast-path default would order it on a team lane instead).
        engine = BatchExecutor(token, num_lanes=2, window=8, team_threshold=0)
        # approve then two distinct spenders of account 0 — a
        # synchronization group that must escalate as one batch.
        engine.submit(0, op("approve", 1, 5))
        engine.run()
        engine.submit(1, op("transferFrom", 0, 2, 2))
        engine.submit(0, op("transfer", 3, 2))
        stats = engine.run()
        escalated = stats.rounds[-1].escalated_ops
        assert escalated >= 2
        want, _ = expected_bill(escalated, replicas=4, max_batch=64)
        assert stats.rounds[-1].escalation_messages == want

    def test_owner_only_round_pays_nothing(self):
        token = ERC20TokenType(8, total_supply=80)
        engine = BatchExecutor(token, num_lanes=2, window=8)
        for pid in range(8):
            engine.submit(pid, op("transfer", (pid + 1) % 8, 1))
        stats = engine.run()
        assert stats.escalation_messages == 0
        assert stats.escalation_time == 0.0
