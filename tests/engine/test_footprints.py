"""Unit tests for static operation footprints and the pair rule."""

from __future__ import annotations

import pytest

from repro.objects.asset_transfer import AssetTransferType, DynamicOwnerATType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.objects.footprint import (
    EMPTY_FOOTPRINT,
    SUPPLY,
    FootprintSummary,
    OpFootprint,
    allow,
    bal,
    footprint,
    static_pair_kind,
)
from repro.spec.operation import op


class TestPairRule:
    def test_disjoint_writes_commute(self):
        f1 = footprint(observes=[bal(0)], adds=[bal(0), bal(1)])
        f2 = footprint(observes=[bal(2)], adds=[bal(2), bal(3)])
        assert static_pair_kind(f1, f2) == "commute"

    def test_shared_adds_commute(self):
        # Two credits into the same account: deltas commute.
        f1 = footprint(observes=[bal(0)], adds=[bal(0), bal(9)])
        f2 = footprint(observes=[bal(1)], adds=[bal(1), bal(9)])
        assert static_pair_kind(f1, f2) == "commute"

    def test_write_into_observed_cell_conflicts(self):
        f1 = footprint(observes=[bal(0)], adds=[bal(0), bal(1)])
        f2 = footprint(observes=[bal(1)], adds=[bal(1), bal(2)])
        assert static_pair_kind(f1, f2) == "conflict"

    def test_read_only_side_degrades_to_read_only(self):
        writer = footprint(sets=[allow(0, 1)])
        reader = footprint(observes=[allow(0, 1)])
        assert static_pair_kind(writer, reader) == "read-only"

    def test_set_set_conflicts(self):
        f = footprint(sets=[allow(0, 1)])
        assert static_pair_kind(f, f) == "conflict"

    def test_unknown_footprint_is_conservative(self):
        assert static_pair_kind(None, EMPTY_FOOTPRINT) == "conflict"

    def test_empty_commutes_with_everything(self):
        writer = footprint(observes=[bal(0)], adds=[bal(0)], sets=[allow(0, 0)])
        assert static_pair_kind(EMPTY_FOOTPRINT, writer) == "commute"


class TestERC20Footprints:
    @pytest.fixture
    def token(self):
        return ERC20TokenType(4, total_supply=40, with_extensions=True)

    def test_transfer(self, token):
        fp = token.footprint(0, op("transfer", 1, 5))
        assert fp.observes == {bal(0)}
        assert fp.adds == {bal(0), bal(1)}
        assert fp.contended == {bal(0)}

    def test_zero_value_transfer_is_empty(self, token):
        assert token.footprint(0, op("transfer", 1, 0)) == EMPTY_FOOTPRINT

    def test_self_transfer_is_read_only(self, token):
        fp = token.footprint(0, op("transfer", 0, 5))
        assert fp.is_read_only
        assert fp.observes == {bal(0)}

    def test_transfer_from(self, token):
        fp = token.footprint(2, op("transferFrom", 0, 1, 5))
        assert fp.observes == {bal(0), allow(0, 2)}
        assert fp.adds == {bal(0), bal(1), allow(0, 2)}
        # Both the balance and the allowance are spend-contended.
        assert fp.contended == {bal(0), allow(0, 2)}

    def test_approve_is_absolute_write(self, token):
        fp = token.footprint(1, op("approve", 2, 7))
        assert fp.sets == {allow(1, 2)}
        assert not fp.observes

    def test_reads(self, token):
        assert token.footprint(0, op("balanceOf", 3)).observes == {bal(3)}
        assert token.footprint(0, op("allowance", 1, 2)).observes == {
            allow(1, 2)
        }
        assert token.footprint(0, op("totalSupply")).observes == {SUPPLY}

    def test_total_supply_commutes_with_transfers(self, token):
        supply = token.footprint(0, op("totalSupply"))
        transfer = token.footprint(1, op("transfer", 2, 3))
        assert static_pair_kind(supply, transfer) == "commute"

    def test_increase_allowance_is_blind_delta(self, token):
        fp = token.footprint(0, op("increaseAllowance", 1, 5))
        assert fp.adds == {allow(0, 1)}
        assert not fp.observes
        other = token.footprint(0, op("increaseAllowance", 1, 9))
        assert static_pair_kind(fp, other) == "commute"

    def test_decrease_allowance_is_guarded(self, token):
        fp = token.footprint(0, op("decreaseAllowance", 1, 5))
        assert fp.observes == {allow(0, 1)}
        assert fp.adds == {allow(0, 1)}

    def test_paper_case4_conflicts(self, token):
        """approve vs transferFrom on the same allowance cell (Case 4)."""
        approve = token.footprint(0, op("approve", 2, 7))
        spend = token.footprint(2, op("transferFrom", 0, 1, 5))
        assert static_pair_kind(approve, spend) == "conflict"
        assert approve.contended & spend.contended

    def test_paper_commuting_base_case(self, token):
        """approve/approve and approve/transfer commute (paper, Thm 3)."""
        a1 = token.footprint(0, op("approve", 2, 7))
        a2 = token.footprint(1, op("approve", 2, 7))
        transfer = token.footprint(1, op("transfer", 3, 2))
        assert static_pair_kind(a1, a2) == "commute"
        assert static_pair_kind(a1, transfer) == "commute"


class TestAssetTransferFootprints:
    def test_single_owner_transfer(self):
        at = AssetTransferType([10, 10, 10])
        fp = at.footprint(0, op("transfer", 0, 1, 5))
        assert fp.observes == {bal(0)}
        assert fp.adds == {bal(0), bal(1)}

    def test_unauthorized_transfer_is_empty(self):
        at = AssetTransferType([10, 10, 10])
        assert at.footprint(1, op("transfer", 0, 1, 5)) == EMPTY_FOOTPRINT

    def test_shared_account_spends_contend(self):
        """k=2 shared account: both owners' spends contend on the balance —
        the k-AT consensus story at footprint level."""
        at = AssetTransferType([10, 10], owner_map=[{0, 1}, {1}])
        f0 = at.footprint(0, op("transfer", 0, 1, 2))
        f1 = at.footprint(1, op("transfer", 0, 1, 3))
        assert static_pair_kind(f0, f1) == "conflict"
        assert f0.contended & f1.contended == {bal(0)}

    def test_dynamic_owner_map_is_state(self):
        dat = DynamicOwnerATType([10, 10], owner_map=[{0}, {1}])
        transfer = dat.footprint(0, op("transfer", 0, 1, 5))
        assert ("own", 0) in transfer.observes
        set_owners = dat.footprint(0, op("setOwners", 0, frozenset({0, 1})))
        assert set_owners.sets == {("own", 0)}
        assert static_pair_kind(set_owners, transfer) == "conflict"


class TestERC721Footprints:
    @pytest.fixture
    def nft(self):
        return ERC721TokenType(3, initial_owners=[0, 1, 2])

    def test_transfers_of_distinct_tokens_commute(self, nft):
        f0 = nft.footprint(0, op("transferFrom", 0, 1, 0))
        f1 = nft.footprint(1, op("transferFrom", 1, 2, 1))
        assert static_pair_kind(f0, f1) == "commute"

    def test_same_token_race_conflicts(self, nft):
        """The §6 ownerOf race: two transfers of one token need consensus."""
        f0 = nft.footprint(0, op("transferFrom", 0, 1, 0))
        f1 = nft.footprint(2, op("transferFrom", 0, 2, 0))
        assert static_pair_kind(f0, f1) == "conflict"
        assert f0.contended & f1.contended

    def test_owner_of_is_read_only(self, nft):
        read = nft.footprint(1, op("ownerOf", 0))
        write = nft.footprint(0, op("transferFrom", 0, 1, 0))
        assert read.is_read_only
        assert static_pair_kind(read, write) == "read-only"

    def test_operator_grant_conflicts_with_transfers(self, nft):
        grant = nft.footprint(0, op("setApprovalForAll", 1, True))
        transfer = nft.footprint(1, op("transferFrom", 1, 2, 1))
        assert static_pair_kind(grant, transfer) == "conflict"

    def test_self_approval_is_empty(self, nft):
        assert (
            nft.footprint(0, op("setApprovalForAll", 0, True))
            == EMPTY_FOOTPRINT
        )


class TestContended:
    def test_blind_credit_not_contended(self):
        fp = OpFootprint(
            observes=frozenset({bal(0)}),
            adds=frozenset({bal(0), bal(1)}),
            sets=frozenset(),
        )
        assert bal(1) not in fp.contended
        assert bal(0) in fp.contended


class TestFootprintSummary:
    """The batch-level commutativity test behind the pipelined frontier
    and the cluster's per-unit dispatch gate — the per-pair rule of
    :func:`static_pair_kind` lifted to unions of footprints."""

    def test_over_unions_by_access_kind(self):
        summary = FootprintSummary.over(
            [
                footprint(observes=[bal(0)], adds=[bal(0), bal(1)]),
                footprint(sets=[allow(0, 1)]),
            ]
        )
        assert summary.observes == frozenset({bal(0)})
        assert summary.adds == frozenset({bal(0), bal(1)})
        assert summary.sets == frozenset({allow(0, 1)})
        assert summary.writes == frozenset({bal(0), bal(1), allow(0, 1)})
        assert not summary.unknown

    def test_over_flags_unknown_members(self):
        summary = FootprintSummary.over([footprint(observes=[bal(0)]), None])
        assert summary.unknown

    def test_read_read_sharing_commutes(self):
        a = FootprintSummary.over([footprint(observes=[bal(3), SUPPLY])])
        b = FootprintSummary.over([footprint(observes=[bal(3)])])
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_delta_delta_sharing_commutes(self):
        # Two batches crediting one cell: commutative deltas on both
        # sides never need an order.
        a = FootprintSummary.over(
            [footprint(observes=[bal(0)], adds=[bal(0), bal(9)])]
        )
        b = FootprintSummary.over(
            [footprint(observes=[bal(1)], adds=[bal(1), bal(9)])]
        )
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_read_gates_on_write(self):
        reader = FootprintSummary.over([footprint(observes=[bal(5)])])
        writer = FootprintSummary.over(
            [footprint(observes=[bal(5)], adds=[bal(5), bal(6)])]
        )
        assert reader.conflicts_with(writer)
        assert writer.conflicts_with(reader)  # symmetric: write gates read

    def test_shared_cell_with_absolute_write_conflicts(self):
        delta = FootprintSummary.over([footprint(adds=[allow(0, 1)])])
        absolute = FootprintSummary.over([footprint(sets=[allow(0, 1)])])
        assert delta.conflicts_with(absolute)
        assert absolute.conflicts_with(delta)
        assert absolute.conflicts_with(absolute)  # set-set too

    def test_disjoint_batches_commute(self):
        a = FootprintSummary.over(
            [footprint(observes=[bal(0)], adds=[bal(0)], sets=[allow(0, 0)])]
        )
        b = FootprintSummary.over(
            [footprint(observes=[bal(1)], adds=[bal(1)], sets=[allow(1, 1)])]
        )
        assert not a.conflicts_with(b)

    def test_unknown_conflicts_with_everything(self):
        unknown = FootprintSummary.over([None])
        empty = FootprintSummary.over([EMPTY_FOOTPRINT])
        assert unknown.conflicts_with(empty)
        assert empty.conflicts_with(unknown)
        assert unknown.conflicts_with(unknown)

    def test_empty_batches_never_conflict(self):
        empty = FootprintSummary.over([])
        writer = FootprintSummary.over(
            [footprint(observes=[bal(0)], adds=[bal(0)])]
        )
        assert not empty.conflicts_with(writer)
        assert not writer.conflicts_with(empty)
