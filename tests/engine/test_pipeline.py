"""Cross-round pipelined execution: equivalence and stage-machine tests.

Machine-checked guarantees of :mod:`repro.engine.pipeline`:

* **barrier identity** — ``pipeline_depth=1`` reproduces the historical
  barrier executor bit for bit: same final state, same responses, same
  clock, same stats dictionary;
* **serial equivalence** — for *any* pipeline depth, lane count, window
  size, and workload mix, the pipelined final state and every response
  equal a plain sequential execution in submission order;
* **depth invariance** — all depths produce the same state and responses;
* **stage machine** — rounds advance ``DRAINED → CLASSIFIED → SYNCED →
  PLANNED → COMMITTED`` and refuse skips and regressions.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor, PipelinedExecutor, RoundStage
from repro.engine.rounds import Round
from repro.errors import EngineError
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadItem,
    WorkloadMix,
)

DEPTHS = (1, 2, 3, 5)

MIXES = {
    "owner_only": OWNER_ONLY_MIX,
    "default": WorkloadMix(),
    "spender_heavy": SPENDER_HEAVY_MIX,
    "approval_heavy": APPROVAL_HEAVY_MIX,
}


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def pipelined_run(factory, items, depth, lanes=4, window=32, **kwargs):
    engine = PipelinedExecutor(
        factory(),
        pipeline_depth=depth,
        num_lanes=lanes,
        window=window,
        **kwargs,
    )
    return engine.run_workload(items)


class TestBarrierIdentity:
    """``pipeline_depth=1`` is the historical barrier path, bit for bit."""

    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_depth_one_matches_batch_executor_exactly(self, mix_name):
        items = TokenWorkloadGenerator(
            12, seed=37, mix=MIXES[mix_name]
        ).generate(240)
        barrier = BatchExecutor(
            ERC20TokenType(12, total_supply=240), num_lanes=4, window=32
        )
        b_state, b_responses, b_stats = barrier.run_workload(items)
        piped = PipelinedExecutor(
            ERC20TokenType(12, total_supply=240),
            pipeline_depth=1,
            num_lanes=4,
            window=32,
        )
        p_state, p_responses, p_stats = piped.run_workload(items)
        assert p_state == b_state
        assert p_responses == b_responses
        assert piped.clock == barrier.clock
        assert p_stats.as_dict() == b_stats.as_dict()

    def test_depth_one_with_team_lanes_matches(self):
        items = TokenWorkloadGenerator(
            10, seed=5, mix=APPROVAL_HEAVY_MIX, spender_pool=3
        ).generate(150)
        kwargs = dict(num_lanes=4, window=16, team_threshold=3, seed=9)
        barrier = BatchExecutor(ERC20TokenType(10, total_supply=200), **kwargs)
        piped = PipelinedExecutor(
            ERC20TokenType(10, total_supply=200), pipeline_depth=1, **kwargs
        )
        assert piped.run_workload(items) == barrier.run_workload(items)

    def test_depth_must_be_positive(self):
        with pytest.raises(EngineError):
            PipelinedExecutor(
                ERC20TokenType(4, total_supply=40), pipeline_depth=0
            )


class TestSerialEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_erc20_state_and_responses_match_spec(self, mix_name, depth):
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12, seed=71, mix=MIXES[mix_name]
        ).generate(300)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = pipelined_run(
            lambda: ERC20TokenType(12, total_supply=240), items, depth
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 6),
        lanes=st.sampled_from([1, 2, 4, 8]),
        window=st.integers(4, 48),
    )
    def test_erc20_hypothesis_sweep(self, seed, depth, lanes, window):
        token = ERC20TokenType(8, total_supply=80)
        items = TokenWorkloadGenerator(
            8, seed=seed, mix=SPENDER_HEAVY_MIX, hotspot_fraction=0.4,
            hotspot_accounts=2,
        ).generate(100)
        ref_state, ref_responses = serial_reference(token, items)
        state, responses, _ = pipelined_run(
            lambda: ERC20TokenType(8, total_supply=80),
            items,
            depth,
            lanes=lanes,
            window=window,
        )
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 5))
    def test_erc721_races(self, seed, depth):
        rng = random.Random(seed)
        factory = lambda: ERC721TokenType(  # noqa: E731
            4, initial_owners=[0, 1, 2, 3, 0, 1]
        )
        names = ["transferFrom", "approve", "ownerOf", "setApprovalForAll"]
        items = []
        for _ in range(60):
            name = rng.choice(names)
            pid = rng.randrange(4)
            if name == "transferFrom":
                operation = op(
                    name, rng.randrange(4), rng.randrange(4), rng.randrange(6)
                )
            elif name == "approve":
                operation = op(name, rng.randrange(4), rng.randrange(6))
            elif name == "ownerOf":
                operation = op(name, rng.randrange(6))
            else:
                operation = op(name, rng.randrange(4), rng.random() < 0.5)
            items.append(WorkloadItem(pid, operation))
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = pipelined_run(factory, items, depth, window=16)
        assert state == ref_state
        assert responses == ref_responses

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), depth=st.integers(1, 5))
    def test_asset_transfer_shared_accounts(self, seed, depth):
        rng = random.Random(seed)
        owner_map = [{0, 1}, {1}, {2}, {3}, {0, 3}]
        factory = lambda: AssetTransferType(  # noqa: E731
            [20] * 5, owner_map=owner_map, num_processes=4
        )
        items = [
            WorkloadItem(
                rng.randrange(4),
                op(
                    "transfer",
                    rng.randrange(5),
                    rng.randrange(5),
                    rng.randint(0, 6),
                ),
            )
            for _ in range(80)
        ]
        ref_state, ref_responses = serial_reference(factory(), items)
        state, responses, _ = pipelined_run(factory, items, depth, window=16)
        assert state == ref_state
        assert responses == ref_responses

    def test_validated_against_oracle(self):
        """Validation mode cross-checks every static verdict at the serial
        prefix state the pipeline maintains for classification."""
        items = TokenWorkloadGenerator(
            10, seed=13, mix=SPENDER_HEAVY_MIX
        ).generate(150)
        _, _, stats = pipelined_run(
            lambda: ERC20TokenType(10, total_supply=200),
            items,
            3,
            validate=True,
        )
        assert stats.ops_executed == 150


class TestDepthInvariance:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    def test_all_depths_agree(self, mix_name):
        items = TokenWorkloadGenerator(
            12, seed=29, mix=MIXES[mix_name]
        ).generate(200)
        outcomes = [
            pipelined_run(
                lambda: ERC20TokenType(12, total_supply=240), items, depth
            )[:2]
            for depth in DEPTHS
        ]
        first_state, first_responses = outcomes[0]
        for state, responses in outcomes[1:]:
            assert state == first_state
            assert responses == first_responses

    def test_same_config_same_stats(self):
        items = TokenWorkloadGenerator(10, seed=5).generate(150)
        runs = [
            pipelined_run(
                lambda: ERC20TokenType(10, total_supply=100), items, 3
            )
            for _ in range(2)
        ]
        assert runs[0][:2] == runs[1][:2]
        assert runs[0][2].as_dict() == runs[1][2].as_dict()

    def test_pipeline_metrics_populated(self):
        items = TokenWorkloadGenerator(
            10, seed=11, mix=SPENDER_HEAVY_MIX
        ).generate(300)
        _, _, stats = pipelined_run(
            lambda: ERC20TokenType(10, total_supply=200), items, 3, window=16
        )
        assert stats.pipeline_depth == 3
        assert 1 <= stats.max_inflight_windows <= 3
        assert stats.virtual_time > 0
        # The clock is the makespan of the overlapped timeline, never the
        # sum of per-round latencies.
        assert stats.virtual_time <= sum(r.virtual_time for r in stats.rounds)


class TestStageMachine:
    def test_stages_progress_in_order(self):
        engine = BatchExecutor(
            ERC20TokenType(6, total_supply=60), num_lanes=2, window=8
        )
        engine.feed(TokenWorkloadGenerator(6, seed=3).generate(8))
        round_ = engine.lifecycle.drain(engine.mempool, 8, 0)
        assert round_.stage is RoundStage.DRAINED
        engine.lifecycle.classify(round_, engine.state)
        assert round_.stage is RoundStage.CLASSIFIED
        engine.lifecycle.synchronize(round_, engine.state)
        assert round_.stage is RoundStage.SYNCED
        engine.lifecycle.plan(round_)
        assert round_.stage is RoundStage.PLANNED
        engine.lifecycle.barrier_stats(round_)
        assert round_.stage is RoundStage.COMMITTED

    def test_stage_skips_are_rejected(self):
        engine = BatchExecutor(
            ERC20TokenType(6, total_supply=60), num_lanes=2, window=8
        )
        engine.feed(TokenWorkloadGenerator(6, seed=3).generate(8))
        round_ = engine.lifecycle.drain(engine.mempool, 8, 0)
        with pytest.raises(EngineError):
            engine.lifecycle.synchronize(round_)  # skips CLASSIFIED
        with pytest.raises(EngineError):
            round_.advance(RoundStage.DRAINED)  # regression

    def test_drain_on_empty_mempool_returns_none(self):
        engine = BatchExecutor(ERC20TokenType(4, total_supply=40))
        assert engine.lifecycle.drain(engine.mempool, 8, 0) is None

    def test_round_exposes_contended_split(self):
        round_ = Round(index=0, ops=[])
        assert round_.escalated_idx == []
        assert round_.chained_ops == 0


class TestFrontierAccessKinds:
    """The per-location frontier is exactly the static commutativity test
    split by access kind.  Single-op windows make each operation its own
    pipeline unit, so the unit start times expose precisely which
    cross-window pairs the frontier orders and which it lets overlap."""

    def _units(self, calls, lanes=4):
        engine = PipelinedExecutor(
            ERC20TokenType(8, total_supply=80),
            pipeline_depth=8,
            num_lanes=lanes,
            window=1,
        )
        for pid, operation in calls:
            engine.submit(pid, operation)
        while engine.step() is not None:
            pass
        units = sorted(engine._pending_units, key=lambda u: u.first_seq)
        engine.run()  # commit; also re-checks the pipeline drains clean
        return units

    def test_read_read_sharing_overlaps(self):
        first, second = self._units(
            [(0, op("balanceOf", 5)), (1, op("balanceOf", 5))]
        )
        assert second.start < first.finish
        assert second.frontier_stall == 0.0

    def test_delta_delta_sharing_overlaps(self):
        # Two credits into account 2 from distinct sources: deltas to one
        # cell commute, so the windows overlap.
        first, second = self._units(
            [(0, op("transfer", 2, 1)), (1, op("transfer", 2, 1))]
        )
        assert second.start < first.finish
        assert second.frontier_stall == 0.0

    def test_read_gates_on_earlier_write(self):
        first, second = self._units(
            [(0, op("transfer", 5, 1)), (2, op("balanceOf", 0))]
        )
        assert second.start >= first.finish
        assert second.frontier_stall > 0.0

    def test_write_gates_on_earlier_read(self):
        first, second = self._units(
            [(2, op("balanceOf", 5)), (5, op("transfer", 6, 1))]
        )
        assert second.start >= first.finish
        assert second.frontier_stall > 0.0

    def test_absolute_writes_serialize(self):
        first, second = self._units(
            [(0, op("approve", 1, 5)), (0, op("approve", 1, 7))]
        )
        assert second.start >= first.finish

    def test_disjoint_footprints_overlap(self):
        first, second = self._units(
            [(0, op("transfer", 1, 1)), (2, op("transfer", 3, 1))]
        )
        assert second.start < first.finish
        assert second.frontier_stall == 0.0
