"""Unit tests for :mod:`repro.faults` and :class:`FaultConfig`.

The fault layer below the cluster: config validation and round-trips,
schedule construction, and the injector's crash lifecycle and network
filter on a bare simulator — deterministic per seed, drop rules first
match wins, delay rules accumulating.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, FaultConfig
from repro.errors import ClusterError
from repro.faults import CrashEvent, FaultInjector, FaultSchedule
from repro.net.network import Message
from repro.net.simulation import Simulator


# -- FaultConfig ----------------------------------------------------------


def test_fault_config_round_trips_through_dict():
    config = FaultConfig(
        enabled=True,
        crashes=((1, 5.0, 20.0), (2, 8.0)),
        drops=(("cl_result", 0.5, 0.0, 10.0),),
        delays=(("cl_lease_ack", 2.0, 0.25),),
        seed=7,
    )
    assert FaultConfig.from_dict(config.as_dict()) == config


def test_fault_config_normalizes_pair_crashes_to_permanent():
    config = FaultConfig(enabled=True, crashes=((2, 8.0),))
    assert config.crashes == ((2, 8.0, None),)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"crashes": ((1, 5.0, 5.0),)},  # restart_at must be after crash_at
        {"crashes": ((-1, 5.0),)},
        {"crashes": ((1, -1.0),)},
        {"crashes": ((1,),)},
        {"drops": (("cl_result", 1.5, 0.0, 10.0),)},
        {"drops": (("cl_result", 0.5, 10.0, 5.0),)},
        {"drops": (("cl_result", 0.5),)},
        {"delays": (("cl_result", -1.0, 0.5),)},
        {"delays": (("cl_result", 1.0, 2.0),)},
        {"delays": (("cl_result", 1.0),)},
    ],
)
def test_fault_config_rejects_malformed_rules(kwargs):
    with pytest.raises(ClusterError):
        FaultConfig(enabled=True, **kwargs)


def test_cluster_config_requires_recovery_for_crash_schedules():
    with pytest.raises(ClusterError, match="result_timeout"):
        ClusterConfig(
            fault=FaultConfig(enabled=True, crashes=((1, 5.0),))
        )


def test_cluster_config_requires_unit_dispatch_for_recovery():
    with pytest.raises(ClusterError, match="component-granular"):
        ClusterConfig(result_timeout=10.0, pipeline_depth=1)


# -- FaultSchedule --------------------------------------------------------


def test_schedule_from_config_is_none_when_disabled():
    assert FaultSchedule.from_config(FaultConfig()) is None
    disabled = FaultConfig(crashes=((1, 5.0),))
    assert FaultSchedule.from_config(disabled) is None


def test_schedule_accepts_crash_events_and_tuples():
    schedule = FaultSchedule(crashes=[CrashEvent(1, 5.0, 20.0), (2, 8.0)])
    assert schedule.crashes == (
        CrashEvent(1, 5.0, 20.0),
        CrashEvent(2, 8.0, None),
    )
    assert schedule.any_faults


def test_schedule_validates_like_the_config():
    with pytest.raises(ClusterError):
        FaultSchedule(crashes=((1, 5.0, 4.0),))


# -- FaultInjector --------------------------------------------------------


def make_injector(schedule: FaultSchedule) -> tuple[FaultInjector, Simulator]:
    simulator = Simulator()
    return FaultInjector(schedule, simulator), simulator


def test_injector_fires_crash_and_restart_callbacks_in_order():
    injector, simulator = make_injector(
        FaultSchedule(crashes=((1, 5.0, 9.0), (2, 7.0)))
    )
    events = []
    injector.on_crash = lambda node: events.append(
        ("crash", node, simulator.now)
    )
    injector.on_restart = lambda node: events.append(
        ("restart", node, simulator.now)
    )
    injector.install()
    simulator.run()
    assert events == [
        ("crash", 1, 5.0),
        ("crash", 2, 7.0),
        ("restart", 1, 9.0),
    ]
    assert injector.crashes == 2 and injector.restarts == 1
    assert injector.is_down(2) and not injector.is_down(1)


def test_injector_install_is_single_shot():
    injector, _ = make_injector(FaultSchedule(crashes=((1, 5.0),)))
    injector.install()
    with pytest.raises(ClusterError):
        injector.install()


def test_fence_is_idempotent_and_counted_separately():
    injector, _ = make_injector(FaultSchedule())
    injector.fence(3)
    injector.fence(3)
    assert injector.fenced == 1
    assert injector.is_down(3)
    assert injector.crashes == 0


def message(src: int, dst: int, message_type: str = "cl_result") -> Message:
    return Message(src=src, dst=dst, type=message_type, payload={})


def test_down_endpoints_lose_messages_outright():
    injector, _ = make_injector(FaultSchedule())
    injector.fence(1)
    assert injector.disposition(message(1, 0)) == (True, 0.0)
    assert injector.disposition(message(0, 1)) == (True, 0.0)
    assert injector.disposition(message(0, 2)) == (False, 0.0)
    assert injector.messages_dropped == 2


def test_drop_rules_respect_type_and_window():
    injector, simulator = make_injector(
        FaultSchedule(drops=(("cl_result", 1.0, 5.0, 10.0),))
    )
    assert injector.disposition(message(0, 1)) == (False, 0.0)  # before
    simulator.schedule_at(6.0, lambda: None)
    simulator.run()
    assert injector.disposition(message(0, 1, "cl_run")) == (False, 0.0)
    assert injector.disposition(message(0, 1)) == (True, 0.0)  # in window
    simulator.schedule_at(10.0, lambda: None)
    simulator.run()
    assert injector.disposition(message(0, 1)) == (False, 0.0)  # past end


def test_delay_rules_accumulate_and_replay_per_seed():
    def decisions(seed: int) -> list[tuple[bool, float]]:
        injector, _ = make_injector(
            FaultSchedule(
                delays=(
                    ("cl_result", 2.0, 0.5),
                    ("cl_result", 1.0, 1.0),
                ),
                seed=seed,
            )
        )
        return [injector.disposition(message(0, 1)) for _ in range(32)]

    first = decisions(11)
    assert first == decisions(11)  # deterministic per seed
    assert first != decisions(12)  # and the dice are really consulted
    extras = {extra for _, extra in first}
    # The certain rule always adds 1.0; the coin-flip rule sometimes
    # stacks its 2.0 on top.
    assert extras == {1.0, 3.0}
