"""Cross-module integration tests: the paper's storyline end to end."""

from __future__ import annotations

import random

import pytest

from repro.analysis.hierarchy import token_consensus_number
from repro.analysis.partition import synchronization_level
from repro.analysis.reachability import escalation_plan, level_trajectory
from repro.dynamic.dynamic_token import (
    DynamicTokenNode,
    assert_converged,
    measure_dynamic,
)
from repro.ledger.blockchain import build_ledger, measure_ledger
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator
from repro.objects.erc20 import ERC20Token, ERC20TokenType
from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import TokenConsensus, algorithm1_system
from repro.runtime.executor import System, run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.workloads.generators import (
    TokenWorkloadGenerator,
    example1_trace,
)

pytestmark = pytest.mark.integration


class TestPaperStoryline:
    """From deployment to consensus: the full §5 narrative in one test."""

    def test_deploy_escalate_solve_consensus(self):
        n, k = 5, 4
        # 1. Deploy: consensus number 1.
        token = ERC20Token(n, total_supply=k)
        assert token_consensus_number(token.state) == 1

        # 2. Escalate: the owner approves k-1 spenders (not wait-free: every
        #    step must succeed).
        for pid, operation in escalation_plan(n, k):
            assert token.invoke(pid, operation) is True
        assert token_consensus_number(token.state) == k

        # 3. Solve consensus among the k enabled spenders using the SAME
        #    shared token object (Algorithm 1).
        protocol = TokenConsensus(token)
        proposals = {pid: f"value-{pid}" for pid in protocol.participants}
        programs = [
            (lambda p=pid: protocol.propose(p, proposals[p]))
            for pid in sorted(protocol.participants)
        ]
        system = System(
            programs=programs,
            objects=[token, *protocol.registers],
            pids=sorted(protocol.participants),
        )
        result = run_system(system)
        assert len(set(result.decisions.values())) == 1

        # 4. The race consumed the synchronization state: the level dropped.
        assert synchronization_level(token.state) < k

    def test_consensus_number_trajectory_on_random_workload(self):
        token_type = ERC20TokenType(4, total_supply=20)
        items = TokenWorkloadGenerator(4, seed=13).generate(150)
        trajectory = level_trajectory(
            token_type, [(i.pid, i.operation) for i in items]
        )
        levels = [level for level, _ in trajectory]
        assert min(levels) >= 1
        assert max(levels) <= 4
        # The trajectory must actually move (dynamic consensus number).
        assert len(set(levels)) > 1


class TestExampleOneEverywhere:
    """Example 1 executed on every stack layer must agree."""

    def test_sequential_vs_ledger(self):
        trace = example1_trace()
        token_type = ERC20TokenType(3, total_supply=10)
        sequential_state, _ = token_type.run(
            [(i.pid, i.operation) for i in trace]
        )

        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=21)
        nodes = build_ledger(network, 3, ERC20TokenType(3, total_supply=10))
        for item in trace:
            nodes[item.pid].submit_operation(item.pid, item.operation)
            simulator.run()  # sequential submission preserves intent order
        assert nodes[0].token_state == sequential_state
        assert nodes[1].token_state == sequential_state

    def test_sequential_vs_dynamic_network(self):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=22)
        nodes = [DynamicTokenNode(i, network, 3, supply=10) for i in range(3)]
        nodes[0].submit_transfer(1, 3)
        simulator.run()
        nodes[1].submit_approve(2, 5)
        simulator.run()
        r3 = nodes[2].submit_transfer_from(1, 2, 5)
        simulator.run()
        r4 = nodes[2].submit_transfer_from(1, 0, 1)
        simulator.run()
        assert r3.response is False  # Bob's balance is only 3
        assert r4.response is True
        assert_converged(nodes)
        assert nodes[0].state.balances == [8, 2, 0]
        assert nodes[0].state.allowances[1][2] == 4


class TestBaselineComparison:
    """The E8 shape on a small instance: dynamic beats global ordering for
    owner-only traffic."""

    def test_owner_traffic_latency_advantage(self):
        n, ops = 4, 30
        rng = random.Random(3)
        traffic = [
            (rng.randrange(n), rng.randrange(n), rng.randint(0, 2))
            for _ in range(ops)
        ]

        # Dynamic network.
        simulator_d = Simulator()
        network_d = Network(simulator_d, UniformLatency(0.5, 1.5), seed=9)
        dyn_nodes = [
            DynamicTokenNode(i, network_d, n, supply=1000) for i in range(n)
        ]
        for actor, dest, value in traffic:
            dyn_nodes[actor].submit_transfer(dest, value)
        simulator_d.run()
        assert_converged(dyn_nodes)
        dyn_stats = measure_dynamic(dyn_nodes)

        # Total-order ledger, unbatched (per-op consensus).
        simulator_l = Simulator()
        network_l = Network(simulator_l, UniformLatency(0.5, 1.5), seed=9)
        ledger_nodes = build_ledger(
            network_l, n, ERC20TokenType(n, total_supply=1000), max_batch=1
        )
        submissions = {}
        from repro.spec.operation import Operation

        for actor, dest, value in traffic:
            tx = ledger_nodes[actor].submit_operation(
                actor, Operation("transfer", (dest, value))
            )
            submissions[tx] = simulator_l.now
        simulator_l.run()
        ledger_stats = measure_ledger(ledger_nodes, submissions)

        # All ops hit the single sequencer back-to-back: queueing makes the
        # ledger's latency grow with contention, while the dynamic network
        # processes accounts in parallel.
        assert dyn_stats.mean_latency < ledger_stats.mean_latency


class TestExplorerOnEmulatedStack:
    def test_algorithm1_requires_an_atomic_token(self):
        """Reproduction note 5 (DESIGN.md): Algorithm 1 composed over
        Algorithm 2's *emulated* token is NOT correct.

        The emulated ``transferFrom`` spans two base objects (the allowance
        register and the k-AT balance); between the two steps a concurrent
        owner can observe the balance effect without the allowance effect (or
        the register reservation without the balance effect), so the
        emulation admits non-linearizable histories and Algorithm 1's
        winner-detection scan misfires.  This is exactly why Theorem 2 takes
        ``T_q`` as an *atomic base object*: consensus numbers are about the
        object, not about implementations of it (Herlihy's hierarchy is not
        robust under composition of implementations).

        The explorer mechanically exhibits the disagreement.
        """
        from repro.objects.erc20 import TokenState
        from repro.protocols.token_from_kat import EmulatedToken
        from repro.objects.register import register_array

        initial = TokenState.create([2, 0, 0], {(0, 1): 2})
        proposals = {0: "a", 1: "b"}

        def factory() -> System:
            emulated = EmulatedToken(initial, k=2, variant="corrected")
            registers = register_array(2)

            def propose(pid: int, index: int):
                def program():
                    yield registers[index].write(proposals[pid])
                    if pid == 0:
                        yield from emulated.transfer(0, 2, 2)
                    else:
                        yield from emulated.transfer_from(1, 0, 2, 2)
                    allowance = yield from emulated.allowance(pid, 0, 1)
                    if allowance == 0:
                        decision = yield registers[1].read()
                        return decision
                    decision = yield registers[0].read()
                    return decision

                return program

            return System(
                programs=[propose(0, 0), propose(1, 1)],
                objects=emulated.base_objects + registers,
                meta={"proposals": proposals},
            )

        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert not report.ok, (
            "expected the composition to fail: the emulated token is not an "
            "atomic base object"
        )
        assert any("agreement" in str(v) for v in report.violations)

    def test_algorithm1_on_atomic_token_same_configuration(self):
        """The control: the identical configuration with the token as a true
        atomic base object is exhaustively correct (Theorem 2)."""
        from repro.objects.erc20 import TokenState

        initial = TokenState.create([2, 0, 0], {(0, 1): 2})
        proposals = {0: "a", 1: "b"}
        factory = lambda: algorithm1_system(proposals, state=initial)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok
        assert report.outcomes == {"a", "b"}
