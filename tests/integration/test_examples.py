"""Smoke tests: every example script must run clean (they are executable
documentation and part of the deliverable)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.integration

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
