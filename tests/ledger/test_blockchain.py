"""Tests for the consensus-based ledger baseline."""

from __future__ import annotations

import random

from repro.ledger.blockchain import build_ledger, measure_ledger
from repro.net.network import Network, UniformLatency
from repro.net.simulation import Simulator
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import op


def make_chain(
    n: int = 4, supply: int = 100, seed: int = 0, max_batch: int = 64
):
    simulator = Simulator()
    network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
    token_type = ERC20TokenType(n, total_supply=supply)
    nodes = build_ledger(network, n, token_type, max_batch=max_batch)
    return simulator, network, nodes


class TestExecution:
    def test_replicas_agree_on_final_state(self):
        simulator, _, nodes = make_chain(seed=2)
        rng = random.Random(0)
        for _ in range(20):
            actor = rng.randrange(4)
            nodes[actor].submit_operation(
                actor, op("transfer", rng.randrange(4), rng.randint(0, 5))
            )
        simulator.run()
        states = {node.token_state for node in nodes}
        assert len(states) == 1

    def test_supply_conserved(self):
        simulator, _, nodes = make_chain(supply=50, seed=4)
        rng = random.Random(1)
        for _ in range(15):
            actor = rng.randrange(4)
            nodes[actor].submit_operation(
                actor, op("transfer", rng.randrange(4), rng.randint(0, 9))
            )
        simulator.run()
        assert nodes[0].token_state.total_supply == 50

    def test_responses_follow_sequential_semantics(self):
        simulator, _, nodes = make_chain(supply=10)
        tx1 = nodes[0].submit_operation(0, op("transfer", 1, 10))
        simulator.run()
        tx2 = nodes[0].submit_operation(0, op("transfer", 1, 1))
        simulator.run()
        responses = {r.tx_id: r.response for r in nodes[0].applied}
        assert responses[tx1] is True
        assert responses[tx2] is False  # account drained by tx1

    def test_all_operation_kinds_execute(self):
        simulator, _, nodes = make_chain(supply=10)
        nodes[0].submit_operation(0, op("approve", 1, 5))
        nodes[1].submit_operation(1, op("transferFrom", 0, 2, 3))
        nodes[2].submit_operation(2, op("balanceOf", 2))
        simulator.run()
        assert nodes[0].token_state.balance(2) == 3
        assert nodes[0].token_state.allowance(0, 1) == 2


class TestMeasurement:
    def test_stats_computed(self):
        simulator, _, nodes = make_chain(seed=7)
        submissions = {}
        for i in range(8):
            tx_id = nodes[i % 4].submit_operation(
                i % 4, op("transfer", (i + 1) % 4, 0)
            )
            submissions[tx_id] = simulator.now
        simulator.run()
        stats = measure_ledger(nodes, submissions)
        assert stats.operations == 8
        assert stats.messages > 0
        assert stats.mean_latency > 0
        assert stats.p99_latency >= stats.mean_latency * 0.5
        assert stats.makespan > 0

    def test_unbatched_message_cost_scales_quadratically(self):
        costs = {}
        for n in (4, 7):
            simulator, network, nodes = make_chain(n=n, max_batch=1)
            submissions = {}
            # One op at a time: no batching amortization possible.
            for i in range(5):
                tx_id = nodes[0].submit_operation(0, op("transfer", 1, 0))
                submissions[tx_id] = simulator.now
                simulator.run()
            stats = measure_ledger(nodes, submissions)
            costs[n] = stats.messages_per_op
        # 3-phase quorum pattern: ~(2n² + n) per op; n=7 must cost far more
        # than n=4 (ratio about (2·49)/(2·16) ≈ 3).
        assert costs[7] > 2.0 * costs[4]
