"""Fault-injection tests: partitions and recovery in the broadcast layer."""

from __future__ import annotations

from repro.dynamic.dynamic_token import DynamicTokenNode, assert_converged
from repro.net.network import ConstantLatency, Network, UniformLatency
from repro.net.reliable_broadcast import ReliableBroadcastNode
from repro.net.simulation import Simulator


class TestBRBUnderPartition:
    def test_minority_partition_blocks_delivery(self):
        # n=4, f=1: quorums need 3 nodes; isolating 2 nodes from 2 others
        # means neither side can gather 2f+1 echoes.
        simulator = Simulator()
        network = Network(simulator, ConstantLatency(1.0), seed=0)
        nodes = [ReliableBroadcastNode(i, network, 4) for i in range(4)]
        network.partition({0, 1}, {2, 3})
        nodes[0].broadcast_value("stuck")
        simulator.run()
        assert all(not node.delivered for node in nodes)

    def test_majority_side_delivers(self):
        # 3 vs 1: the quorum side (3 = 2f+1) delivers; the isolated node
        # cannot (it lacks READY messages).
        simulator = Simulator()
        network = Network(simulator, ConstantLatency(1.0), seed=0)
        nodes = [ReliableBroadcastNode(i, network, 4) for i in range(4)]
        network.partition({0, 1, 2}, {3})
        nodes[0].broadcast_value("quorum-side")
        simulator.run()
        for node in nodes[:3]:
            assert [d[2] for d in node.delivered] == ["quorum-side"]
        assert not nodes[3].delivered

    def test_sender_in_minority_cannot_commit(self):
        simulator = Simulator()
        network = Network(simulator, ConstantLatency(1.0), seed=0)
        nodes = [ReliableBroadcastNode(i, network, 4) for i in range(4)]
        network.partition({0}, {1, 2, 3})
        nodes[0].broadcast_value("isolated")
        simulator.run()
        assert all(not node.delivered for node in nodes)


class TestDynamicNetworkPartitionIndependence:
    def test_unrelated_accounts_progress_during_partition(self):
        # The §7 design's virtue: a partition only stalls traffic that
        # crosses it; accounts whose owner and audience sit on the quorum
        # side keep settling.  (With a global sequencer, a partition that
        # strands the leader stalls EVERYTHING.)
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=4)
        nodes = [DynamicTokenNode(i, network, 4, supply=100) for i in range(4)]
        for dest in range(1, 4):
            nodes[0].submit_transfer(dest, 20)
        simulator.run()

        network.partition({0, 1, 2}, {3})
        record = nodes[1].submit_transfer(2, 5)
        simulator.run()
        # Node 1's op reached the 2f+1 quorum side and settled there.
        assert record.response is True
        assert nodes[2].state.balances[2] == 25
        # The isolated node has not seen it.
        assert nodes[3].state.balances[2] == 20

    def test_fifo_gap_blocks_later_ops_after_heal(self):
        # Dropped messages are dropped (the network is not a retransmitting
        # channel).  A node that missed sequence 0 of an account log buffers
        # every later op of that log — per-account FIFO is what guarantees
        # identical allowance evolution, so the gap must block.  (Real
        # deployments add retransmission/state-transfer; the simulator
        # documents the bare semantics.)
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=5)
        nodes = [DynamicTokenNode(i, network, 4, supply=100) for i in range(4)]
        network.partition({0, 1, 2}, {3})
        nodes[0].submit_transfer(1, 10)
        simulator.run()
        network.heal()
        nodes[0].submit_transfer(2, 5)
        simulator.run()
        # The quorum side applied both ops in order...
        assert nodes[1].state.balances[1] == 10
        assert nodes[1].state.balances[2] == 5
        # ...while node 3, which missed seq 0, buffers seq 1 (FIFO gap):
        assert nodes[3].state.balances[1] == 0
        assert nodes[3].state.balances[2] == 0
        # Other accounts' logs are unaffected by node 0's gap.
        nodes[1].submit_transfer(3, 2)
        simulator.run()
        assert nodes[3].state.balances[3] == 2

    def test_full_connectivity_converges_as_baseline(self):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=6)
        nodes = [DynamicTokenNode(i, network, 4, supply=100) for i in range(4)]
        for dest in range(1, 4):
            nodes[0].submit_transfer(dest, 10)
        simulator.run()
        assert_converged(nodes)
