"""Tests for the simulated network."""

from __future__ import annotations

import random

import pytest

from repro.errors import NetworkError
from repro.net.network import (
    ConstantLatency,
    LogNormalLatency,
    Message,
    Network,
    UniformLatency,
)
from repro.net.node import Node
from repro.net.simulation import Simulator


class Recorder(Node):
    """A node that logs everything it receives."""

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        self.received: list[tuple[float, Message]] = []

    def handle_ping(self, message: Message) -> None:
        self.received.append((self.now, message))

    def handle_pong(self, message: Message) -> None:
        self.received.append((self.now, message))


def make_net(num_nodes: int = 3, latency=None, seed: int = 0):
    simulator = Simulator()
    network = Network(simulator, latency or ConstantLatency(1.0), seed=seed)
    nodes = [Recorder(i, network) for i in range(num_nodes)]
    return simulator, network, nodes


class TestDelivery:
    def test_send_delivers_after_latency(self):
        simulator, network, nodes = make_net()
        network.send(0, 1, "ping", {"x": 1})
        simulator.run()
        assert len(nodes[1].received) == 1
        time, message = nodes[1].received[0]
        assert time == 1.0
        assert message.payload == {"x": 1}

    def test_self_send_is_immediate(self):
        simulator, network, nodes = make_net()
        network.send(0, 0, "ping")
        simulator.run()
        assert nodes[0].received[0][0] == 0.0

    def test_broadcast_reaches_everyone(self):
        simulator, network, nodes = make_net(4)
        network.broadcast(2, "ping")
        simulator.run()
        assert all(len(node.received) == 1 for node in nodes)

    def test_unknown_destination_raises(self):
        _, network, _ = make_net(2)
        with pytest.raises(NetworkError):
            network.send(0, 9, "ping")

    def test_unknown_handler_raises(self):
        simulator, network, nodes = make_net(2)
        network.send(0, 1, "mystery")
        with pytest.raises(NetworkError):
            simulator.run()

    def test_duplicate_registration_rejected(self):
        simulator = Simulator()
        network = Network(simulator)
        Recorder(0, network)
        with pytest.raises(NetworkError):
            Recorder(0, network)


class TestStats:
    def test_counts(self):
        simulator, network, nodes = make_net(3)
        network.broadcast(0, "ping")
        network.send(1, 2, "pong")
        simulator.run()
        assert network.stats.messages_sent == 4
        assert network.stats.messages_delivered == 4
        assert network.stats.by_type == {"ping": 3, "pong": 1}


class TestPartitions:
    def test_cross_partition_messages_dropped(self):
        simulator, network, nodes = make_net(4)
        network.partition({0, 1}, {2, 3})
        network.send(0, 2, "ping")
        network.send(0, 1, "ping")
        simulator.run()
        assert len(nodes[2].received) == 0
        assert len(nodes[1].received) == 1
        assert network.stats.messages_dropped == 1

    def test_heal_restores_connectivity(self):
        simulator, network, nodes = make_net(4)
        network.partition({0, 1}, {2, 3})
        network.heal()
        network.send(0, 2, "ping")
        simulator.run()
        assert len(nodes[2].received) == 1


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.sample(0, 1, random.Random(0)) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(NetworkError):
            ConstantLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.5, 1.5)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.5 <= model.sample(0, 1, rng) <= 1.5

    def test_uniform_validates(self):
        with pytest.raises(NetworkError):
            UniformLatency(2.0, 1.0)

    def test_lognormal_positive(self):
        model = LogNormalLatency()
        rng = random.Random(2)
        assert all(model.sample(0, 1, rng) > 0 for _ in range(100))

    def test_determinism_per_seed(self):
        def run(seed):
            simulator, network, nodes = make_net(
                3, UniformLatency(0.5, 1.5), seed=seed
            )
            network.broadcast(0, "ping")
            simulator.run()
            return [(n.node_id, t) for n in nodes for t, _ in n.received]

        assert run(7) == run(7)
        assert run(7) != run(8)
