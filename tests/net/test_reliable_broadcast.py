"""Tests for Bracha reliable broadcast and the FIFO layer."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.network import ConstantLatency, Network, UniformLatency
from repro.net.reliable_broadcast import ReliableBroadcastNode
from repro.net.simulation import Simulator


def make_system(n: int = 4, fifo: bool = False, seed: int = 0, latency=None):
    simulator = Simulator()
    network = Network(simulator, latency or UniformLatency(0.5, 1.5), seed=seed)
    nodes = [ReliableBroadcastNode(i, network, n, fifo=fifo) for i in range(n)]
    return simulator, network, nodes


class TestQuorumMath:
    def test_f_derived_from_n(self):
        _, _, nodes = make_system(4)
        assert nodes[0].endpoint.f == 1
        assert nodes[0].endpoint.echo_quorum == 3

    def test_n_less_than_3f_plus_1_rejected(self):
        simulator = Simulator()
        network = Network(simulator)
        with pytest.raises(NetworkError):
            ReliableBroadcastNode(0, network, 3, max_faulty=1)

    def test_f0_quorums(self):
        _, _, nodes = make_system(1)
        assert nodes[0].endpoint.f == 0
        assert nodes[0].endpoint.echo_quorum == 1


class TestDelivery:
    def test_all_correct_nodes_deliver(self):
        simulator, _, nodes = make_system(4)
        nodes[0].broadcast_value("hello")
        simulator.run()
        for node in nodes:
            assert [d[2] for d in node.delivered] == ["hello"]

    def test_delivery_exactly_once(self):
        simulator, _, nodes = make_system(4)
        nodes[1].broadcast_value("x")
        simulator.run()
        assert all(len(node.delivered) == 1 for node in nodes)

    def test_multiple_instances_independent(self):
        simulator, _, nodes = make_system(4)
        nodes[0].broadcast_value("a")
        nodes[2].broadcast_value("b")
        simulator.run()
        for node in nodes:
            assert {d[2] for d in node.delivered} == {"a", "b"}

    def test_message_complexity_quadratic(self):
        simulator, network, nodes = make_system(4, latency=ConstantLatency(1.0))
        nodes[0].broadcast_value("m")
        simulator.run()
        # n SEND + n ECHO broadcasts + n READY broadcasts = n + 2n².
        assert network.stats.by_type["brb_send"] == 4
        assert network.stats.by_type["brb_echo"] == 16
        assert network.stats.by_type["brb_ready"] == 16


class TestConsistencyUnderEquivocation:
    def test_equivocating_sender_cannot_split_correct_nodes(self):
        # A Byzantine sender sends different SENDs to different halves; no
        # two correct nodes may deliver different values for one instance.
        simulator, network, nodes = make_system(4)
        byzantine = 0
        for dst, value in [(1, "A"), (2, "A"), (3, "B")]:
            network.send(
                byzantine,
                dst,
                "brb_send",
                {"sender": byzantine, "seq": 0, "value": value},
            )
        simulator.run()
        delivered_values = {d[2] for node in nodes[1:] for d in node.delivered}
        assert len(delivered_values) <= 1

    def test_forged_send_for_other_sender_ignored(self):
        simulator, network, nodes = make_system(4)
        # Node 1 forges a SEND claiming node 2 is the sender.
        network.send(1, 3, "brb_send", {"sender": 2, "seq": 0, "value": "fake"})
        simulator.run()
        assert all(not node.delivered for node in nodes)


class TestFifoLayer:
    def test_sender_order_preserved(self):
        simulator, _, nodes = make_system(4, fifo=True, seed=3)
        for value in ["m0", "m1", "m2", "m3"]:
            nodes[0].broadcast_value(value)
        simulator.run()
        for node in nodes:
            from_zero = [d[2] for d in node.delivered if d[0] == 0]
            assert from_zero == ["m0", "m1", "m2", "m3"]

    def test_fifo_indices_sequential(self):
        simulator, _, nodes = make_system(4, fifo=True)
        nodes[1].broadcast_value("a")
        nodes[1].broadcast_value("b")
        simulator.run()
        for node in nodes:
            seqs = [d[1] for d in node.delivered if d[0] == 1]
            assert seqs == [0, 1]

    def test_interleaved_senders(self):
        simulator, _, nodes = make_system(4, fifo=True, seed=9)
        nodes[0].broadcast_value("a0")
        nodes[1].broadcast_value("b0")
        nodes[0].broadcast_value("a1")
        simulator.run()
        for node in nodes:
            from_zero = [d[2] for d in node.delivered if d[0] == 0]
            assert from_zero == ["a0", "a1"]
