"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.simulation import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        log = []
        simulator.schedule(3.0, lambda: log.append("c"))
        simulator.schedule(1.0, lambda: log.append("a"))
        simulator.schedule(2.0, lambda: log.append("b"))
        simulator.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        simulator = Simulator()
        log = []
        simulator.schedule(1.0, lambda: log.append("first"))
        simulator.schedule(1.0, lambda: log.append("second"))
        simulator.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        simulator = Simulator()
        times = []
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [2.5]
        assert simulator.now == 2.5

    def test_nested_scheduling(self):
        simulator = Simulator()
        log = []

        def outer():
            log.append(("outer", simulator.now))
            simulator.schedule(1.0, lambda: log.append(("inner", simulator.now)))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            Simulator().schedule(-1.0, lambda: None)


class TestRunLimits:
    def test_until_bound(self):
        simulator = Simulator()
        log = []
        simulator.schedule(1.0, lambda: log.append(1))
        simulator.schedule(5.0, lambda: log.append(5))
        simulator.run(until=2.0)
        assert log == [1]
        assert simulator.pending_events == 1
        simulator.run()
        assert log == [1, 5]

    def test_max_events(self):
        simulator = Simulator()
        log = []
        for i in range(5):
            simulator.schedule(float(i + 1), lambda i=i: log.append(i))
        processed = simulator.run(max_events=2)
        assert processed == 2
        assert log == [0, 1]

    def test_cancellation(self):
        simulator = Simulator()
        log = []
        handle = simulator.schedule(1.0, lambda: log.append("cancelled"))
        simulator.schedule(2.0, lambda: log.append("kept"))
        handle.cancel()
        simulator.run()
        assert log == ["kept"]

    def test_events_processed_counter(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 2
