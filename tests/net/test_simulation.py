"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.simulation import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        log = []
        simulator.schedule(3.0, lambda: log.append("c"))
        simulator.schedule(1.0, lambda: log.append("a"))
        simulator.schedule(2.0, lambda: log.append("b"))
        simulator.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        simulator = Simulator()
        log = []
        simulator.schedule(1.0, lambda: log.append("first"))
        simulator.schedule(1.0, lambda: log.append("second"))
        simulator.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        simulator = Simulator()
        times = []
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [2.5]
        assert simulator.now == 2.5

    def test_nested_scheduling(self):
        simulator = Simulator()
        log = []

        def outer():
            log.append(("outer", simulator.now))
            simulator.schedule(
                1.0, lambda: log.append(("inner", simulator.now))
            )

        simulator.schedule(1.0, outer)
        simulator.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            Simulator().schedule(-1.0, lambda: None)


class TestRunLimits:
    def test_until_bound(self):
        simulator = Simulator()
        log = []
        simulator.schedule(1.0, lambda: log.append(1))
        simulator.schedule(5.0, lambda: log.append(5))
        simulator.run(until=2.0)
        assert log == [1]
        assert simulator.pending_events == 1
        simulator.run()
        assert log == [1, 5]

    def test_max_events(self):
        simulator = Simulator()
        log = []
        for i in range(5):
            simulator.schedule(float(i + 1), lambda i=i: log.append(i))
        processed = simulator.run(max_events=2)
        assert processed == 2
        assert log == [0, 1]

    def test_cancellation(self):
        simulator = Simulator()
        log = []
        handle = simulator.schedule(1.0, lambda: log.append("cancelled"))
        simulator.schedule(2.0, lambda: log.append("kept"))
        handle.cancel()
        simulator.run()
        assert log == ["kept"]

    def test_events_processed_counter(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 2


class TestTombstonePurge:
    """Cancelled events must not accumulate in the heap (regression: they
    used to linger as tombstones until popped)."""

    def test_purge_compacts_the_heap(self):
        simulator = Simulator()
        log = []
        handles = [
            simulator.schedule(float(i + 1), lambda i=i: log.append(i))
            for i in range(100)
        ]
        # Cancel more than half: the heap must shrink to the live events.
        for handle in handles[:60]:
            handle.cancel()
        assert simulator.purges >= 1
        # The purge fired once past the 50% mark (at 51 cancellations),
        # compacting 100 entries down to the 49 then-live events; the last
        # 9 cancellations stay below threshold as tombstones.
        assert simulator.queued_entries == 49
        assert simulator.pending_events == 40
        simulator.run()
        assert log == list(range(60, 100))

    def test_no_purge_below_threshold(self):
        simulator = Simulator()
        handles = [
            simulator.schedule(float(i + 1), lambda: None) for i in range(10)
        ]
        for handle in handles[:4]:
            handle.cancel()
        assert simulator.purges == 0
        assert simulator.queued_entries == 10
        assert simulator.pending_events == 6

    def test_double_cancel_is_idempotent(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert simulator.pending_events == 1
        assert simulator.run() == 1

    def test_cancel_after_execution_is_noop(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run(until=1.5)
        handle.cancel()  # already executed: must not corrupt bookkeeping
        assert simulator.pending_events == 1
        assert simulator.run() == 1

    def test_purge_preserves_order(self):
        simulator = Simulator()
        log = []
        handles = [
            simulator.schedule(float(i + 1), lambda i=i: log.append(i))
            for i in range(50)
        ]
        # Cancel all even-indexed events plus one odd (26 of 50, interleaved
        # with survivors): crosses the >50% threshold mid-stream.
        for i in range(0, 50, 2):
            handles[i].cancel()
        handles[1].cancel()
        assert simulator.purges >= 1
        simulator.run()
        assert log == list(range(3, 50, 2))

    def test_cancel_heavy_workload_bounds_heap(self):
        """Schedule-and-cancel churn (retransmission-timer pattern): the
        heap stays proportional to the live events, not the churn."""
        simulator = Simulator()
        live = [simulator.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for _ in range(1000):
            simulator.schedule(500.0, lambda: None).cancel()
        assert simulator.queued_entries <= 2 * (len(live) + 1)
        assert simulator.pending_events == 10
