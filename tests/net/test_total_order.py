"""Tests for the leader-based total-order broadcast."""

from __future__ import annotations

from repro.net.network import ConstantLatency, Network, UniformLatency
from repro.net.simulation import Simulator
from repro.net.total_order import TotalOrderNode


def make_system(n: int = 4, seed: int = 0, latency=None, max_batch: int = 64):
    simulator = Simulator()
    network = Network(simulator, latency or UniformLatency(0.5, 1.5), seed=seed)
    nodes = [
        TotalOrderNode(i, network, n, max_batch=max_batch) for i in range(n)
    ]
    return simulator, network, nodes


def delivered_txs(node: TotalOrderNode) -> list:
    return [tx for _, batch in node.delivered for tx in batch]


class TestTotalOrder:
    def test_single_submission_delivered_everywhere(self):
        simulator, _, nodes = make_system()
        nodes[2].submit("tx1")
        simulator.run()
        for node in nodes:
            assert delivered_txs(node) == ["tx1"]

    def test_identical_order_across_replicas(self):
        simulator, _, nodes = make_system(seed=5)
        for i in range(10):
            nodes[i % 4].submit(f"tx{i}")
        simulator.run()
        reference = delivered_txs(nodes[0])
        assert len(reference) == 10
        for node in nodes[1:]:
            assert delivered_txs(node) == reference

    def test_no_gaps_in_sequence(self):
        simulator, _, nodes = make_system(seed=1)
        for i in range(7):
            nodes[i % 4].submit(i)
        simulator.run()
        for node in nodes:
            seqs = [seq for seq, _ in node.delivered]
            assert seqs == sorted(seqs)
            assert seqs == list(range(seqs[-1] + 1)) if seqs else True

    def test_batching_amortizes_consensus(self):
        # All 8 txs submitted at t=0 to the leader: while the first proposal
        # is in flight the rest accumulate and commit as one batch.
        simulator, network, nodes = make_system(latency=ConstantLatency(1.0))
        for i in range(8):
            nodes[0].submit(i)
        simulator.run()
        assert delivered_txs(nodes[0]) == list(range(8))
        # Far fewer than 8 full 3-phase rounds.
        assert len(nodes[0].delivered) <= 2

    def test_batch_size_cap(self):
        simulator, _, nodes = make_system(
            latency=ConstantLatency(1.0), max_batch=2
        )
        for i in range(6):
            nodes[0].submit(i)
        simulator.run()
        assert all(len(batch) <= 2 for _, batch in nodes[0].delivered)
        assert delivered_txs(nodes[0]) == list(range(6))

    def test_message_complexity_per_round(self):
        simulator, network, nodes = make_system(latency=ConstantLatency(1.0))
        nodes[0].submit("tx")
        simulator.run()
        # 1 submit (self) + n propose + n·n prepare + n·n commit.
        assert network.stats.by_type["to_propose"] == 4
        assert network.stats.by_type["to_prepare"] == 16
        assert network.stats.by_type["to_commit"] == 16

    def test_non_leader_submission_forwarded(self):
        simulator, network, nodes = make_system()
        nodes[3].submit("remote")
        simulator.run()
        assert delivered_txs(nodes[1]) == ["remote"]

    def test_non_leader_proposals_ignored(self):
        simulator, network, nodes = make_system(latency=ConstantLatency(1.0))
        network.broadcast(2, "to_propose", {"seq": 0, "txs": ["evil"]})
        simulator.run()
        assert all(not node.delivered for node in nodes)

    def test_determinism_per_seed(self):
        def run(seed):
            simulator, _, nodes = make_system(seed=seed)
            for i in range(6):
                nodes[i % 4].submit(i)
            simulator.run()
            return delivered_txs(nodes[0])

        assert run(3) == run(3)
