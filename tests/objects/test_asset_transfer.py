"""Tests for the asset-transfer object (Definition 1)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.asset_transfer import (
    AssetTransfer,
    AssetTransferType,
    ATState,
    DynamicOwnerAT,
)
from repro.spec.operation import op


class TestDefinition1Transitions:
    """Each Δ branch of Definition 1."""

    def test_owner_transfer_succeeds(self):
        at = AssetTransferType([5, 0])
        state, result = at.apply(at.initial_state(), 0, op("transfer", 0, 1, 3))
        assert result is True
        assert state.balances == (2, 3)

    def test_insufficient_balance_fails(self):
        at = AssetTransferType([5, 0])
        state, result = at.apply(at.initial_state(), 0, op("transfer", 0, 1, 6))
        assert result is False
        assert state.balances == (5, 0)

    def test_non_owner_fails(self):
        # p1 is not in µ(a0): the transfer returns FALSE, state unchanged.
        at = AssetTransferType([5, 0])
        state, result = at.apply(at.initial_state(), 1, op("transfer", 0, 1, 1))
        assert result is False
        assert state.balances == (5, 0)

    def test_balance_of(self):
        at = AssetTransferType([5, 2])
        _, result = at.apply(at.initial_state(), 1, op("balanceOf", 0))
        assert result == 5

    def test_total_supply(self):
        at = AssetTransferType([5, 2])
        _, result = at.apply(at.initial_state(), 0, op("totalSupply"))
        assert result == 7

    def test_exact_balance_transfer(self):
        at = AssetTransferType([5, 0])
        state, result = at.apply(at.initial_state(), 0, op("transfer", 0, 1, 5))
        assert result is True
        assert state.balances == (0, 5)

    def test_zero_transfer_by_owner(self):
        at = AssetTransferType([5, 0])
        state, result = at.apply(at.initial_state(), 0, op("transfer", 0, 1, 0))
        assert result is True
        assert state.balances == (5, 0)


class TestSharedAccounts:
    def test_k_classification(self):
        at = AssetTransferType([3, 0, 0], owner_map=[{0, 1, 2}, {1}, {2}])
        assert at.k == 3

    def test_single_owner_default(self):
        at = AssetTransferType([1, 1])
        assert at.k == 1
        assert at.owners(0) == frozenset({0})

    def test_any_owner_can_spend_shared_account(self):
        at = AssetTransferType([4, 0, 0], owner_map=[{0, 1}, {1}, {2}])
        state, result = at.apply(at.initial_state(), 1, op("transfer", 0, 2, 2))
        assert result is True
        assert state.balances == (2, 0, 2)

    def test_non_member_of_shared_account_rejected(self):
        at = AssetTransferType([4, 0, 0], owner_map=[{0, 1}, {1}, {2}])
        _, result = at.apply(at.initial_state(), 2, op("transfer", 0, 2, 2))
        assert result is False


class TestValidation:
    def test_negative_balance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            AssetTransferType([-1])

    def test_empty_owner_set_rejected(self):
        with pytest.raises(InvalidArgumentError):
            AssetTransferType([1, 1], owner_map=[set(), {1}])

    def test_owner_map_length_checked(self):
        with pytest.raises(InvalidArgumentError):
            AssetTransferType([1, 1], owner_map=[{0}])

    def test_unknown_owner_pid_rejected(self):
        with pytest.raises(InvalidArgumentError):
            AssetTransferType([1, 1], owner_map=[{0}, {5}])

    def test_unknown_account_raises(self):
        at = AssetTransferType([1, 1])
        with pytest.raises(InvalidArgumentError):
            at.apply(at.initial_state(), 0, op("transfer", 0, 9, 1))

    def test_negative_amount_raises(self):
        at = AssetTransferType([1, 1])
        with pytest.raises(InvalidArgumentError):
            at.apply(at.initial_state(), 0, op("transfer", 0, 1, -1))


class TestRuntimeObject:
    def test_shared_object_wrapper(self):
        at = AssetTransfer([5, 0])
        assert at.invoke(0, at.transfer(0, 1, 2).operation) is True
        assert at.invoke(0, at.balance_of(1).operation) == 2
        assert at.k == 1

    def test_supply_conserved(self):
        at = AssetTransfer([5, 3])
        at.invoke(0, at.transfer(0, 1, 4).operation)
        assert at.invoke(0, at.total_supply().operation) == 8


class TestDynamicOwnerAT:
    def test_set_owners_changes_authorization(self):
        at = DynamicOwnerAT([5, 0, 0], max_owners=2)
        assert at.invoke(1, at.transfer(0, 2, 1).operation) is False
        assert at.invoke(0, at.set_owners(0, {0, 1}).operation) is True
        assert at.invoke(1, at.transfer(0, 2, 1).operation) is True

    def test_k_bound_enforced(self):
        at = DynamicOwnerAT([5, 0, 0], max_owners=2)
        assert at.invoke(0, at.set_owners(0, {0, 1, 2}).operation) is False

    def test_initial_owner_map_must_respect_bound(self):
        with pytest.raises(InvalidArgumentError):
            DynamicOwnerAT(
                [1, 1, 1], owner_map=[{0, 1, 2}, {1}, {2}], max_owners=2
            )

    def test_balance_and_supply(self):
        at = DynamicOwnerAT([5, 1], max_owners=1)
        assert at.invoke(0, at.balance_of(0).operation) == 5
        assert at.invoke(0, at.total_supply().operation) == 6

    def test_empty_owner_set_rejected(self):
        at = DynamicOwnerAT([1, 1], max_owners=1)
        with pytest.raises(InvalidArgumentError):
            at.invoke(0, at.set_owners(0, set()).operation)


class TestATState:
    def test_with_transfer(self):
        state = ATState((5, 0))
        assert state.with_transfer(0, 1, 2).balances == (3, 2)

    def test_total_supply(self):
        assert ATState((5, 3)).total_supply == 8

    def test_immutability(self):
        state = ATState((5, 0))
        state.with_transfer(0, 1, 2)
        assert state.balances == (5, 0)
