"""Tests for the consensus object."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.consensus import UNDECIDED, ConsensusObject, ConsensusType
from repro.spec.operation import Operation, op


class TestConsensusType:
    def test_initially_undecided(self):
        assert ConsensusType().initial_state() is UNDECIDED

    def test_first_proposal_decides(self):
        consensus = ConsensusType()
        state, result = consensus.apply(UNDECIDED, 0, op("propose", "x"))
        assert state == "x"
        assert result == "x"

    def test_later_proposals_return_decided(self):
        consensus = ConsensusType()
        state, _ = consensus.apply(UNDECIDED, 0, op("propose", "x"))
        state, result = consensus.apply(state, 1, op("propose", "y"))
        assert result == "x"
        assert state == "x"

    def test_none_is_a_valid_proposal(self):
        # UNDECIDED is a sentinel distinct from None.
        consensus = ConsensusType()
        state, result = consensus.apply(UNDECIDED, 0, op("propose", None))
        assert result is None
        _, second = consensus.apply(state, 1, op("propose", "y"))
        assert second is None

    def test_arity_checked(self):
        with pytest.raises(InvalidArgumentError):
            ConsensusType().apply(UNDECIDED, 0, Operation("propose", ()))


class TestConsensusObject:
    def test_decided_property(self):
        consensus = ConsensusObject()
        assert consensus.decided is None
        consensus.invoke(0, consensus.propose(42).operation)
        assert consensus.decided == 42

    def test_agreement_across_processes(self):
        consensus = ConsensusObject()
        first = consensus.invoke(2, consensus.propose("a").operation)
        second = consensus.invoke(0, consensus.propose("b").operation)
        third = consensus.invoke(1, consensus.propose("c").operation)
        assert first == second == third == "a"
