"""Tests for the ERC1155 multi-token object (§6)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc1155 import ERC1155Token, ERC1155TokenType
from repro.spec.operation import op


@pytest.fixture
def token() -> ERC1155TokenType:
    # 3 accounts, 2 token types; account 0 holds 10 of type 0 and 4 of type 1.
    return ERC1155TokenType([[10, 4], [0, 0], [0, 0]])


class TestReads:
    def test_balance_of(self, token):
        state = token.initial_state()
        assert token.apply(state, 1, op("balanceOf", 0, 0))[1] == 10
        assert token.apply(state, 1, op("balanceOf", 0, 1))[1] == 4

    def test_balance_of_batch(self, token):
        state = token.initial_state()
        _, result = token.apply(
            state, 1, op("balanceOfBatch", (0, 0, 1), (0, 1, 0))
        )
        assert result == (10, 4, 0)

    def test_batch_read_length_mismatch(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(
                token.initial_state(), 0, op("balanceOfBatch", (0, 1), (0,))
            )


class TestSafeTransferFrom:
    def test_holder_transfers(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("safeTransferFrom", 0, 1, 0, 6)
        )
        assert result is True
        assert state.balance(0, 0) == 4
        assert state.balance(1, 0) == 6

    def test_insufficient_fails(self, token):
        state = token.initial_state()
        successor, result = token.apply(
            state, 0, op("safeTransferFrom", 0, 1, 1, 5)
        )
        assert result is False
        assert successor == state

    def test_unauthorized_fails(self, token):
        state = token.initial_state()
        successor, result = token.apply(
            state, 1, op("safeTransferFrom", 0, 1, 0, 1)
        )
        assert result is False
        assert successor == state

    def test_operator_transfers(self, token):
        state, _ = token.apply(
            token.initial_state(), 0, op("setApprovalForAll", 2, True)
        )
        state, result = token.apply(
            state, 2, op("safeTransferFrom", 0, 2, 0, 3)
        )
        assert result is True
        assert state.balance(2, 0) == 3


class TestBatchTransfer:
    def test_batch_success(self, token):
        state, result = token.apply(
            token.initial_state(),
            0,
            op("safeBatchTransferFrom", 0, 1, (0, 1), (5, 2)),
        )
        assert result is True
        assert state.balance(1, 0) == 5
        assert state.balance(1, 1) == 2

    def test_batch_is_atomic(self, token):
        # Second component unaffordable: the whole batch must fail.
        state = token.initial_state()
        successor, result = token.apply(
            state, 0, op("safeBatchTransferFrom", 0, 1, (0, 1), (5, 9))
        )
        assert result is False
        assert successor == state

    def test_batch_aggregates_same_type(self, token):
        # 6 + 6 of type 0 exceeds the balance of 10 even though each
        # component alone is affordable.
        state = token.initial_state()
        successor, result = token.apply(
            state, 0, op("safeBatchTransferFrom", 0, 1, (0, 0), (6, 6))
        )
        assert result is False
        assert successor == state

    def test_batch_length_mismatch(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(
                token.initial_state(),
                0,
                op("safeBatchTransferFrom", 0, 1, (0,), (1, 2)),
            )

    def test_empty_batch_succeeds(self, token):
        state = token.initial_state()
        successor, result = token.apply(
            state, 0, op("safeBatchTransferFrom", 0, 1, (), ())
        )
        assert result is True
        assert successor == state


class TestOperators:
    def test_toggle(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("setApprovalForAll", 1, True)
        )
        assert result is True
        assert token.apply(state, 2, op("isApprovedForAll", 0, 1))[1] is True
        state, _ = token.apply(state, 0, op("setApprovalForAll", 1, False))
        assert token.apply(state, 2, op("isApprovedForAll", 0, 1))[1] is False

    def test_self_approval_rejected(self, token):
        state = token.initial_state()
        successor, result = token.apply(
            state, 0, op("setApprovalForAll", 0, True)
        )
        assert result is False
        assert successor == state


class TestValidation:
    def test_ragged_grid_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC1155TokenType([[1, 2], [3]])

    def test_negative_balance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC1155TokenType([[-1]])

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC1155TokenType([])

    def test_unknown_token_type(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("balanceOf", 0, 9))


class TestRuntimeObject:
    def test_call_builders(self):
        token = ERC1155Token([[5, 0], [0, 0]])
        assert (
            token.invoke(0, token.safe_transfer_from(0, 1, 0, 2).operation)
            is True
        )
        assert token.invoke(0, token.balance_of(1, 0).operation) == 2
        assert (
            token.invoke(
                0, token.safe_batch_transfer_from(0, 1, [0], [3]).operation
            )
            is True
        )
        assert token.invoke(
            0, token.balance_of_batch([0, 1], [0, 0]).operation
        ) == (0, 5)
