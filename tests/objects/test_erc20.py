"""Tests for the ERC20 token object (Definition 3 / Algorithm 3).

Covers every branch of the Δ relation, the paper's Example 1 execution, and
the ERC20-standard deployment state.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20Token, ERC20TokenType, TokenState
from repro.spec.operation import op


@pytest.fixture
def token() -> ERC20TokenType:
    return ERC20TokenType(3, total_supply=10, deployer=0)


class TestDeployment:
    def test_deployer_holds_supply(self, token):
        state = token.initial_state()
        assert state.balances == (10, 0, 0)

    def test_allowances_start_empty(self, token):
        state = token.initial_state()
        assert all(
            state.allowance(a, p) == 0 for a in range(3) for p in range(3)
        )

    def test_zero_state_default(self):
        token = ERC20TokenType(2)
        assert token.initial_state().balances == (0, 0)

    def test_explicit_initial_state(self):
        state = TokenState.create([1, 2], {(0, 1): 3})
        token = ERC20TokenType(2, initial_state=state)
        assert token.initial_state() is state

    def test_initial_state_and_supply_mutually_exclusive(self):
        with pytest.raises(InvalidArgumentError):
            ERC20TokenType(
                2, initial_state=TokenState.create([0, 0]), total_supply=5
            )

    def test_deployer_must_exist(self):
        with pytest.raises(InvalidArgumentError):
            ERC20TokenType(2, total_supply=5, deployer=7)

    def test_owner_bijection_is_identity(self, token):
        assert token.owner(1) == 1
        assert token.account_of(2) == 2


class TestTransfer:
    def test_success_branch(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("transfer", 1, 3)
        )
        assert result is True
        assert state.balances == (7, 3, 0)

    def test_allowances_untouched_by_transfer(self, token):
        start = TokenState.create([10, 0, 0], {(0, 2): 4})
        state, _ = token.apply(start, 0, op("transfer", 1, 3))
        assert state.allowance(0, 2) == 4

    def test_insufficient_balance_branch(self, token):
        start = token.initial_state()
        state, result = token.apply(start, 1, op("transfer", 0, 1))
        assert result is False
        assert state == start

    def test_exact_balance(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("transfer", 2, 10)
        )
        assert result is True
        assert state.balances == (0, 0, 10)

    def test_zero_value_transfer_succeeds(self, token):
        start = token.initial_state()
        state, result = token.apply(start, 1, op("transfer", 0, 0))
        assert result is True
        assert state == start

    def test_self_transfer_is_identity(self, token):
        # Sequential-update semantics (as in the Solidity contract): a
        # self-transfer of an affordable amount leaves the balance unchanged.
        state, result = token.apply(
            token.initial_state(), 0, op("transfer", 0, 4)
        )
        assert result is True
        assert state.balances == (10, 0, 0)


class TestApprove:
    def test_sets_allowance(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("approve", 2, 5)
        )
        assert result is True
        assert state.allowance(0, 2) == 5

    def test_overwrites_not_accumulates(self, token):
        state, _ = token.apply(token.initial_state(), 0, op("approve", 2, 5))
        state, _ = token.apply(state, 0, op("approve", 2, 3))
        assert state.allowance(0, 2) == 3

    def test_revocation_by_zero(self, token):
        state, _ = token.apply(token.initial_state(), 0, op("approve", 2, 5))
        state, result = token.apply(state, 0, op("approve", 2, 0))
        assert result is True
        assert state.allowance(0, 2) == 0

    def test_balances_untouched(self, token):
        state, _ = token.apply(token.initial_state(), 0, op("approve", 2, 5))
        assert state.balances == (10, 0, 0)

    def test_only_own_account_affected(self, token):
        state, _ = token.apply(token.initial_state(), 1, op("approve", 2, 5))
        assert state.allowance(1, 2) == 5
        assert state.allowance(0, 2) == 0

    def test_approve_succeeds_regardless_of_balance(self, token):
        # Bob (empty account) can still approve Charlie (the allowance just
        # cannot be used until the account is funded: Eq. 10's convention).
        state, result = token.apply(
            token.initial_state(), 1, op("approve", 2, 9)
        )
        assert result is True
        assert state.allowance(1, 2) == 9

    def test_self_approval_allowed(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("approve", 0, 5)
        )
        assert result is True
        assert state.allowance(0, 0) == 5


class TestTransferFrom:
    @pytest.fixture
    def approved_state(self, token) -> TokenState:
        # Alice holds 10 and approved Charlie for 5.
        return TokenState.create([10, 0, 0], {(0, 2): 5})

    def test_success_branch(self, token, approved_state):
        state, result = token.apply(
            approved_state, 2, op("transferFrom", 0, 1, 4)
        )
        assert result is True
        assert state.balances == (6, 4, 0)
        assert state.allowance(0, 2) == 1

    def test_insufficient_allowance_branch(self, token, approved_state):
        state, result = token.apply(
            approved_state, 2, op("transferFrom", 0, 1, 6)
        )
        assert result is False
        assert state == approved_state

    def test_insufficient_balance_branch(self, token):
        # Allowance 5 but balance only 3 (the Example 1 failure case).
        start = TokenState.create([0, 3, 0], {(1, 2): 5})
        state, result = token.apply(start, 2, op("transferFrom", 1, 2, 5))
        assert result is False
        assert state == start

    def test_no_allowance_branch(self, token):
        start = TokenState.create([10, 0, 0])
        state, result = token.apply(start, 1, op("transferFrom", 0, 1, 1))
        assert result is False
        assert state == start

    def test_full_allowance_consumed(self, token, approved_state):
        state, result = token.apply(
            approved_state, 2, op("transferFrom", 0, 2, 5)
        )
        assert result is True
        assert state.allowance(0, 2) == 0
        assert state.balances == (5, 0, 5)

    def test_zero_value_always_succeeds(self, token):
        start = TokenState.create([10, 0, 0])
        state, result = token.apply(start, 1, op("transferFrom", 0, 2, 0))
        assert result is True
        assert state == start

    def test_other_allowances_untouched(self, token):
        start = TokenState.create([10, 0, 0], {(0, 1): 4, (0, 2): 5})
        state, _ = token.apply(start, 2, op("transferFrom", 0, 1, 2))
        assert state.allowance(0, 1) == 4
        assert state.allowance(0, 2) == 3

    def test_owner_needs_self_allowance_for_transfer_from(self, token):
        # Definition 3 makes no owner exception in transferFrom.
        start = TokenState.create([10, 0, 0])
        _, result = token.apply(start, 0, op("transferFrom", 0, 1, 1))
        assert result is False


class TestReads:
    def test_balance_of(self, token):
        _, result = token.apply(token.initial_state(), 2, op("balanceOf", 0))
        assert result == 10

    def test_allowance_read(self, token):
        state = TokenState.create([10, 0, 0], {(0, 2): 5})
        _, result = token.apply(state, 1, op("allowance", 0, 2))
        assert result == 5

    def test_total_supply(self, token):
        state = TokenState.create([4, 5, 1])
        _, result = token.apply(state, 0, op("totalSupply"))
        assert result == 10

    def test_reads_are_read_only(self, token):
        state = TokenState.create([4, 5, 1], {(0, 1): 2})
        for operation in (
            op("balanceOf", 1),
            op("allowance", 0, 1),
            op("totalSupply"),
        ):
            assert token.is_read_only(state, 2, operation)


class TestValidation:
    def test_unknown_operation(self, token):
        from repro.errors import UnknownOperationError

        with pytest.raises(UnknownOperationError):
            token.apply(token.initial_state(), 0, op("mint", 5))

    def test_unknown_account(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("transfer", 7, 1))

    def test_unknown_pid(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 9, op("transfer", 1, 1))

    def test_negative_value(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("transfer", 1, -1))

    def test_bool_value_rejected(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("transfer", 1, True))

    def test_extensions_disabled_by_default(self, token):
        from repro.errors import UnknownOperationError

        with pytest.raises(UnknownOperationError):
            token.apply(token.initial_state(), 0, op("increaseAllowance", 1, 2))


class TestExtensions:
    @pytest.fixture
    def ext_token(self) -> ERC20TokenType:
        return ERC20TokenType(2, total_supply=5, with_extensions=True)

    def test_increase_allowance(self, ext_token):
        state, result = ext_token.apply(
            ext_token.initial_state(), 0, op("increaseAllowance", 1, 3)
        )
        assert result is True
        assert state.allowance(0, 1) == 3
        state, _ = ext_token.apply(state, 0, op("increaseAllowance", 1, 2))
        assert state.allowance(0, 1) == 5

    def test_decrease_allowance(self, ext_token):
        state, _ = ext_token.apply(
            ext_token.initial_state(), 0, op("increaseAllowance", 1, 3)
        )
        state, result = ext_token.apply(state, 0, op("decreaseAllowance", 1, 2))
        assert result is True
        assert state.allowance(0, 1) == 1

    def test_decrease_below_zero_fails(self, ext_token):
        state = ext_token.initial_state()
        state, result = ext_token.apply(state, 0, op("decreaseAllowance", 1, 1))
        assert result is False


class TestExample1:
    """The paper's Example 1, step by step (q0 .. q4)."""

    def test_full_trace(self, token):
        q0 = token.initial_state()
        assert q0.balances == (10, 0, 0)

        # Alice sends Bob 3 tokens.
        q1, r1 = token.apply(q0, 0, op("transfer", 1, 3))
        assert r1 is True
        assert q1.balances == (7, 3, 0)

        # Bob approves Charlie for up to 5.
        q2, r2 = token.apply(q1, 1, op("approve", 2, 5))
        assert r2 is True
        assert q2.allowances[1] == (0, 0, 5)

        # Charlie tries to take 5 from Bob: balance 3 is insufficient.
        q3, r3 = token.apply(q2, 2, op("transferFrom", 1, 2, 5))
        assert r3 is False
        assert q3 == q2

        # Charlie moves 1 token from Bob to Alice.
        q4, r4 = token.apply(q3, 2, op("transferFrom", 1, 0, 1))
        assert r4 is True
        assert q4.balances == (8, 2, 0)
        assert q4.allowance(1, 2) == 4


class TestRuntimeERC20Token:
    def test_call_builders(self):
        token = ERC20Token(3, total_supply=10)
        assert token.invoke(0, token.transfer(1, 3).operation) is True
        assert token.invoke(1, token.approve(2, 5).operation) is True
        assert token.invoke(2, token.allowance(1, 2).operation) == 5
        assert token.invoke(0, token.balance_of(1).operation) == 3
        assert token.invoke(0, token.total_supply().operation) == 10

    def test_execute_helper(self):
        token = ERC20Token(2, total_supply=4)
        assert token.execute(0, token.transfer(1, 1)) is True

    def test_execute_rejects_foreign_call(self):
        token_a = ERC20Token(2, total_supply=4)
        token_b = ERC20Token(2, total_supply=4)
        with pytest.raises(InvalidArgumentError):
            token_a.execute(0, token_b.transfer(1, 1))


class TestTokenState:
    def test_create_sparse_allowances(self):
        state = TokenState.create([1, 2, 3], {(0, 2): 7})
        assert state.allowance(0, 2) == 7
        assert state.allowance(2, 0) == 0

    def test_create_validates_balances(self):
        with pytest.raises(InvalidArgumentError):
            TokenState.create([-1, 0])

    def test_create_validates_allowance_indices(self):
        with pytest.raises(InvalidArgumentError):
            TokenState.create([1, 1], {(0, 5): 1})

    def test_create_validates_allowance_values(self):
        with pytest.raises(InvalidArgumentError):
            TokenState.create([1, 1], {(0, 1): -2})

    def test_deploy_validates(self):
        with pytest.raises(InvalidArgumentError):
            TokenState.deploy(2, -1)

    def test_hashable(self):
        a = TokenState.create([1, 2], {(0, 1): 3})
        b = TokenState.create([1, 2], {(0, 1): 3})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_functional_updates_do_not_mutate(self):
        state = TokenState.create([5, 0])
        state.with_transfer(0, 1, 2)
        state.with_allowance(0, 1, 9)
        assert state.balances == (5, 0)
        assert state.allowance(0, 1) == 0
