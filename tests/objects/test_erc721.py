"""Tests for the ERC721 non-fungible token object (§6)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc721 import NO_APPROVAL, ERC721Token, ERC721TokenType
from repro.spec.operation import op


@pytest.fixture
def nft() -> ERC721TokenType:
    # 3 accounts; tokens 0,1 minted to account 0, token 2 to account 1.
    return ERC721TokenType(3, initial_owners=[0, 0, 1])


class TestReads:
    def test_owner_of(self, nft):
        state = nft.initial_state()
        assert nft.apply(state, 2, op("ownerOf", 0))[1] == 0
        assert nft.apply(state, 2, op("ownerOf", 2))[1] == 1

    def test_balance_counts_tokens(self, nft):
        state = nft.initial_state()
        assert nft.apply(state, 0, op("balanceOf", 0))[1] == 2
        assert nft.apply(state, 0, op("balanceOf", 1))[1] == 1
        assert nft.apply(state, 0, op("balanceOf", 2))[1] == 0

    def test_get_approved_initially_none(self, nft):
        assert (
            nft.apply(nft.initial_state(), 0, op("getApproved", 0))[1]
            == NO_APPROVAL
        )


class TestTransferFrom:
    def test_owner_transfers(self, nft):
        state, result = nft.apply(
            nft.initial_state(), 0, op("transferFrom", 0, 2, 0)
        )
        assert result is True
        assert state.owner_of(0) == 2

    def test_wrong_source_fails(self, nft):
        state = nft.initial_state()
        successor, result = nft.apply(state, 0, op("transferFrom", 2, 1, 0))
        assert result is False
        assert successor == state

    def test_unauthorized_fails(self, nft):
        state = nft.initial_state()
        successor, result = nft.apply(state, 2, op("transferFrom", 0, 2, 0))
        assert result is False
        assert successor == state

    def test_approved_spender_transfers(self, nft):
        state, _ = nft.apply(nft.initial_state(), 0, op("approve", 2, 0))
        state, result = nft.apply(state, 2, op("transferFrom", 0, 2, 0))
        assert result is True
        assert state.owner_of(0) == 2

    def test_operator_transfers(self, nft):
        state, _ = nft.apply(
            nft.initial_state(), 0, op("setApprovalForAll", 2, True)
        )
        state, result = nft.apply(state, 2, op("transferFrom", 0, 1, 1))
        assert result is True
        assert state.owner_of(1) == 1

    def test_approval_cleared_on_transfer(self, nft):
        state, _ = nft.apply(nft.initial_state(), 0, op("approve", 2, 0))
        state, _ = nft.apply(state, 2, op("transferFrom", 0, 2, 0))
        assert state.approved[0] == NO_APPROVAL
        # The old approval does not survive on the new owner.
        successor, result = nft.apply(state, 0, op("transferFrom", 2, 0, 0))
        assert result is False
        assert successor == state

    def test_race_on_one_token_has_unique_winner(self, nft):
        # Both 1 and 2 approved-for-all on account 0's tokens: only the first
        # transferFrom succeeds, the second fails (the §6 race core).
        state = nft.initial_state()
        state, _ = nft.apply(state, 0, op("setApprovalForAll", 1, True))
        state, _ = nft.apply(state, 0, op("setApprovalForAll", 2, True))
        state, first = nft.apply(state, 1, op("transferFrom", 0, 1, 0))
        state, second = nft.apply(state, 2, op("transferFrom", 0, 2, 0))
        assert first is True
        assert second is False
        assert state.owner_of(0) == 1


class TestApprovals:
    def test_owner_approves(self, nft):
        state, result = nft.apply(nft.initial_state(), 0, op("approve", 1, 0))
        assert result is True
        assert state.approved[0] == 1

    def test_non_owner_cannot_approve(self, nft):
        state = nft.initial_state()
        successor, result = nft.apply(state, 2, op("approve", 2, 0))
        assert result is False
        assert successor == state

    def test_operator_can_approve(self, nft):
        state, _ = nft.apply(
            nft.initial_state(), 0, op("setApprovalForAll", 1, True)
        )
        state, result = nft.apply(state, 1, op("approve", 2, 0))
        assert result is True
        assert state.approved[0] == 2

    def test_clearing_approval(self, nft):
        state, _ = nft.apply(nft.initial_state(), 0, op("approve", 1, 0))
        state, result = nft.apply(state, 0, op("approve", NO_APPROVAL, 0))
        assert result is True
        assert state.approved[0] == NO_APPROVAL

    def test_operator_toggle(self, nft):
        state, _ = nft.apply(
            nft.initial_state(), 0, op("setApprovalForAll", 1, True)
        )
        assert nft.apply(state, 2, op("isApprovedForAll", 0, 1))[1] is True
        state, _ = nft.apply(state, 0, op("setApprovalForAll", 1, False))
        assert nft.apply(state, 2, op("isApprovedForAll", 0, 1))[1] is False

    def test_self_operator_rejected(self, nft):
        state = nft.initial_state()
        successor, result = nft.apply(
            state, 0, op("setApprovalForAll", 0, True)
        )
        assert result is False
        assert successor == state


class TestValidation:
    def test_unknown_token(self, nft):
        with pytest.raises(InvalidArgumentError):
            nft.apply(nft.initial_state(), 0, op("ownerOf", 9))

    def test_unknown_account(self, nft):
        with pytest.raises(InvalidArgumentError):
            nft.apply(nft.initial_state(), 0, op("balanceOf", 9))

    def test_mint_to_unknown_account_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC721TokenType(2, initial_owners=[0, 5])


class TestRuntimeObject:
    def test_call_builders(self):
        nft = ERC721Token(3, initial_owners=[0])
        assert nft.invoke(0, nft.approve(1, 0).operation) is True
        assert nft.invoke(1, nft.transfer_from(0, 1, 0).operation) is True
        assert nft.invoke(2, nft.owner_of(0).operation) == 1
        assert nft.invoke(2, nft.balance_of(1).operation) == 1
