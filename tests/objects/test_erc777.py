"""Tests for the ERC777 token object (§6)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc777 import ERC777Token, ERC777TokenType
from repro.spec.operation import op


@pytest.fixture
def token() -> ERC777TokenType:
    return ERC777TokenType([10, 0, 0])


class TestSend:
    def test_send_succeeds(self, token):
        state, result = token.apply(token.initial_state(), 0, op("send", 1, 4))
        assert result is True
        assert state.balances == (6, 4, 0)

    def test_send_insufficient_fails(self, token):
        state = token.initial_state()
        successor, result = token.apply(state, 1, op("send", 0, 1))
        assert result is False
        assert successor == state

    def test_send_zero(self, token):
        state, result = token.apply(token.initial_state(), 1, op("send", 0, 0))
        assert result is True


class TestOperators:
    def test_self_is_always_operator(self, token):
        state = token.initial_state()
        assert token.apply(state, 0, op("isOperatorFor", 1, 1))[1] is True

    def test_authorize_and_send(self, token):
        state, result = token.apply(
            token.initial_state(), 0, op("authorizeOperator", 2)
        )
        assert result is True
        state, result = token.apply(state, 2, op("operatorSend", 0, 1, 7))
        assert result is True
        assert state.balances == (3, 7, 0)

    def test_operator_spends_entire_balance(self, token):
        # The §6 observation: operators have no bounded allowance.
        state, _ = token.apply(
            token.initial_state(), 0, op("authorizeOperator", 2)
        )
        state, result = token.apply(state, 2, op("operatorSend", 0, 2, 10))
        assert result is True
        assert state.balances == (0, 0, 10)

    def test_unauthorized_operator_send_fails(self, token):
        state = token.initial_state()
        successor, result = token.apply(state, 2, op("operatorSend", 0, 1, 1))
        assert result is False
        assert successor == state

    def test_revocation(self, token):
        state, _ = token.apply(
            token.initial_state(), 0, op("authorizeOperator", 2)
        )
        state, result = token.apply(state, 0, op("revokeOperator", 2))
        assert result is True
        _, result = token.apply(state, 2, op("operatorSend", 0, 1, 1))
        assert result is False

    def test_self_authorization_rejected(self, token):
        state = token.initial_state()
        successor, result = token.apply(state, 0, op("authorizeOperator", 0))
        assert result is False
        assert successor == state

    def test_operator_flag_visible(self, token):
        state, _ = token.apply(
            token.initial_state(), 0, op("authorizeOperator", 1)
        )
        assert (
            token.apply(state, 2, op("isOperatorFor", 1, 0))[1] is True
        )
        assert token.apply(state, 2, op("isOperatorFor", 2, 0))[1] is False


class TestReads:
    def test_balance_of(self, token):
        assert (
            token.apply(token.initial_state(), 1, op("balanceOf", 0))[1] == 10
        )

    def test_total_supply(self, token):
        state, _ = token.apply(token.initial_state(), 0, op("send", 1, 3))
        assert token.apply(state, 0, op("totalSupply"))[1] == 10


class TestValidation:
    def test_negative_balances_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC777TokenType([-1])

    def test_empty_accounts_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ERC777TokenType([])

    def test_unknown_account(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("send", 9, 1))

    def test_negative_amount(self, token):
        with pytest.raises(InvalidArgumentError):
            token.apply(token.initial_state(), 0, op("send", 1, -1))


class TestRuntimeObject:
    def test_call_builders(self):
        token = ERC777Token([5, 0])
        assert token.invoke(0, token.authorize_operator(1).operation) is True
        assert token.invoke(1, token.operator_send(0, 1, 5).operation) is True
        assert token.invoke(0, token.balance_of(1).operation) == 5
        assert token.invoke(0, token.total_supply().operation) == 5
