"""Tests for atomic registers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.register import (
    BOTTOM,
    AtomicRegister,
    register_array,
    register_matrix,
)


class TestAtomicRegister:
    def test_initial_is_bottom(self):
        register = AtomicRegister()
        assert register.invoke(0, register.read().operation) is BOTTOM

    def test_write_then_read(self):
        register = AtomicRegister()
        assert register.invoke(0, register.write(7).operation) is True
        assert register.invoke(1, register.read().operation) == 7

    def test_overwrite(self):
        register = AtomicRegister()
        register.invoke(0, register.write("a").operation)
        register.invoke(1, register.write("b").operation)
        assert register.invoke(0, register.read().operation) == "b"

    def test_custom_initial(self):
        register = AtomicRegister(initial=0)
        assert register.invoke(0, register.read().operation) == 0

    def test_named(self):
        register = AtomicRegister(name="R[3]")
        assert register.name == "R[3]"

    def test_write_arity_checked(self):
        register = AtomicRegister()
        from repro.spec.operation import Operation

        with pytest.raises(InvalidArgumentError):
            register.invoke(0, Operation("write", ()))

    def test_read_arity_checked(self):
        register = AtomicRegister()
        from repro.spec.operation import Operation

        with pytest.raises(InvalidArgumentError):
            register.invoke(0, Operation("read", (1,)))

    def test_reset(self):
        register = AtomicRegister()
        register.invoke(0, register.write(3).operation)
        register.reset()
        assert register.invoke(0, register.read().operation) is BOTTOM


class TestRegisterArrays:
    def test_array_sizes_and_names(self):
        array = register_array(3, prefix="R")
        assert len(array) == 3
        assert array[0].name == "R[0]"
        assert array[2].name == "R[2]"

    def test_array_registers_independent(self):
        array = register_array(2)
        array[0].invoke(0, array[0].write(1).operation)
        assert array[1].invoke(0, array[1].read().operation) is BOTTOM

    def test_empty_array(self):
        assert register_array(0) == []

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidArgumentError):
            register_array(-1)

    def test_matrix_shape(self):
        matrix = register_matrix(2, 3)
        assert len(matrix) == 2
        assert all(len(row) == 3 for row in matrix)
        assert matrix[1][2].name.endswith("[1][2]")

    def test_matrix_negative_rejected(self):
        with pytest.raises(InvalidArgumentError):
            register_matrix(-1, 2)
