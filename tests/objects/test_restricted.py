"""Tests for transition-restricted object types (T|Q')."""

from __future__ import annotations

import pytest

from repro.analysis.partition import synchronization_level
from repro.analysis.spenders import potential_level
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType
from repro.objects.register import RegisterType
from repro.objects.restricted import (
    RestrictedObject,
    RestrictedType,
    restrict_to_potential_qk,
    restrict_to_qk,
)
from repro.spec.operation import op


class TestRestrictedType:
    def test_allowed_transition_passes_through(self):
        restricted = RestrictedType(RegisterType(0), lambda s: s < 10)
        state, result = restricted.apply(0, 0, op("write", 5))
        assert state == 5
        assert result is True

    def test_blocked_transition_returns_false(self):
        restricted = RestrictedType(RegisterType(0), lambda s: s < 10)
        state, result = restricted.apply(0, 0, op("write", 15))
        assert state == 0
        assert result is False

    def test_reads_never_blocked(self):
        restricted = RestrictedType(RegisterType(0), lambda s: s < 10)
        state, result = restricted.apply(5, 0, op("read"))
        assert state == 5
        assert result == 5

    def test_initial_state_must_be_allowed(self):
        with pytest.raises(InvalidArgumentError):
            RestrictedType(RegisterType(99), lambda s: s is not None and s < 10)

    def test_name_default(self):
        restricted = RestrictedType(RegisterType(0), lambda s: True)
        assert "register" in restricted.name

    def test_operation_names_forwarded(self):
        restricted = RestrictedType(RegisterType(0), lambda s: True)
        assert restricted.operation_names() == ("read", "write")


class TestRestrictToQk:
    def test_approve_within_k_allowed(self):
        token = ERC20TokenType(3, total_supply=6)
        restricted = restrict_to_qk(token, 2)
        state, result = restricted.apply(
            restricted.initial_state(), 0, op("approve", 1, 3)
        )
        assert result is True
        assert synchronization_level(state) == 2

    def test_approve_beyond_k_blocked(self):
        token = ERC20TokenType(3, total_supply=6)
        restricted = restrict_to_qk(token, 2)
        state, _ = restricted.apply(
            restricted.initial_state(), 0, op("approve", 1, 3)
        )
        blocked, result = restricted.apply(state, 0, op("approve", 2, 3))
        assert result is False
        assert blocked == state
        assert synchronization_level(blocked) == 2

    def test_transfers_within_k_unaffected(self):
        token = ERC20TokenType(3, total_supply=6)
        restricted = restrict_to_qk(token, 2)
        state, result = restricted.apply(
            restricted.initial_state(), 0, op("transfer", 1, 4)
        )
        assert result is True
        assert state.balances == (2, 4, 0)

    def test_k_must_be_positive(self):
        with pytest.raises(InvalidArgumentError):
            restrict_to_qk(ERC20TokenType(2), 0)

    def test_zero_balance_approve_allowed_under_sigma_restriction(self):
        # σ ignores allowances on empty accounts, so approving from an empty
        # account never raises the level under the σ-based restriction.
        token = ERC20TokenType(3)  # all balances zero
        restricted = restrict_to_qk(token, 1)
        state, result = restricted.apply(
            restricted.initial_state(), 0, op("approve", 1, 5)
        )
        assert result is True
        assert synchronization_level(state) == 1


class TestRestrictToPotentialQk:
    def test_potential_restriction_blocks_empty_account_approvals(self):
        # Algorithm 2's guard counts allowances regardless of balance.
        token = ERC20TokenType(3)
        restricted = restrict_to_potential_qk(token, 1)
        state, result = restricted.apply(
            restricted.initial_state(), 0, op("approve", 1, 5)
        )
        assert result is False
        assert potential_level(state) == 1

    def test_potential_bound_dominates_sigma_level(self):
        token = ERC20TokenType(3, total_supply=6)
        restricted = restrict_to_potential_qk(token, 2)
        state = restricted.initial_state()
        state, _ = restricted.apply(state, 0, op("approve", 1, 3))
        _, blocked = restricted.apply(state, 0, op("approve", 2, 3))
        assert blocked is False
        assert synchronization_level(state) <= potential_level(state) <= 2


class TestRestrictedObject:
    def test_runtime_wrapper(self):
        obj = RestrictedObject(RegisterType(0), lambda s: s < 10)
        assert obj.invoke(0, obj.op("write", 3).operation) is True
        assert obj.invoke(0, obj.op("write", 30).operation) is False
        assert obj.invoke(0, obj.op("read").operation) == 3
