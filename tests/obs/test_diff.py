"""The trace differ's contract: diff(A, A) is all zeros, and on real
divergent runs the per-category deltas re-partition the makespan delta
exactly — the headline property inherited from the attribution's
partition exactness, enforced here on every traced configuration.
"""

from __future__ import annotations

import pytest
from test_identity import CONFIGS, make_items

from repro.obs import (
    TraceError,
    TraceRecorder,
    chrome_trace,
    diff_profiles,
    explain_regression,
    profile_document,
    profile_tracer,
)

IDS = [label for label, _, _ in CONFIGS]


def record(build, mix, ops: int | None = None, max_spans=None):
    tracer = TraceRecorder(max_spans=max_spans)
    items = make_items(mix)
    if ops is not None:
        items = items[:ops]
    build(tracer).run_workload(items)
    return tracer


@pytest.mark.parametrize("label,mix,build", CONFIGS, ids=IDS)
def test_self_diff_is_all_zeros(label, mix, build):
    explanation = explain_regression(
        record(build, mix), record(build, mix)
    ).check()
    assert explanation.makespan_delta == 0
    assert all(d.delta == 0 for d in explanation.categories)
    assert all(d.delta == 0 for d in explanation.tracks)
    assert all(d.delta == 0 for d in explanation.stages)
    assert any(
        "no attribution movement" in line
        for line in explanation.render()
    )


@pytest.mark.parametrize("label,mix,build", CONFIGS, ids=IDS)
def test_category_deltas_repartition_makespan_delta(label, mix, build):
    """A genuinely perturbed run (3/4 of the workload): each side's
    totals partition its own makespan, so the deltas must re-partition
    the makespan delta — ``check()`` enforces it, and we re-assert the
    sum here so a vacuous check() can't hide."""
    base = record(build, mix)
    other = record(build, mix, ops=192)
    explanation = explain_regression(base, other).check()
    assert explanation.exact
    assert explanation.makespan_delta != 0
    assert explanation.attributed_delta == pytest.approx(
        explanation.makespan_delta, rel=1e-9, abs=1e-9
    )
    # Ranked: largest absolute mover first.
    magnitudes = [abs(d.delta) for d in explanation.categories]
    assert magnitudes == sorted(magnitudes, reverse=True)


def _engine_config():
    return next(
        (mix, build)
        for label, mix, build in CONFIGS
        if label == "engine"
    )


def test_document_profile_matches_tracer_profile():
    mix, build = _engine_config()
    tracer = record(build, mix)
    live = profile_tracer(tracer, label="x")
    doc = profile_document(chrome_trace(tracer), label="x")
    assert doc.makespan == pytest.approx(live.makespan)
    assert set(doc.totals) == set(live.totals)
    for category, amount in live.totals.items():
        assert doc.totals[category] == pytest.approx(amount, abs=1e-9)
    assert doc.stages.keys() == live.stages.keys()
    explanation = diff_profiles(live, doc).check()
    assert abs(explanation.makespan_delta) < 1e-9
    assert all(abs(d.delta) < 1e-9 for d in explanation.categories)


def test_mixed_exact_sampled_diff_uses_occupancy_on_both_sides():
    mix, build = _engine_config()
    full = record(build, mix)
    sampled = record(build, mix, max_spans=32)
    assert sampled.sampled
    explanation = explain_regression(full, sampled)
    assert not explanation.exact
    # Like-for-like: both sides fell back to the exact occupancy
    # accumulators, so the identical workload shows zero movement even
    # though one side evicted most of its spans.
    assert all(d.delta == pytest.approx(0) for d in explanation.categories)
    with pytest.raises(TraceError):
        explanation.check()
    assert any("sampled/occupancy" in line for line in explanation.render())


def test_explain_regression_rejects_unprofilable_input():
    with pytest.raises(TraceError):
        explain_regression(42, TraceRecorder())


def test_render_is_deterministic_and_bounded():
    mix, build = _engine_config()
    base = record(build, mix)
    other = record(build, mix, ops=192)
    first = explain_regression(base, other).render(top=3)
    second = explain_regression(base, other).render(top=3)
    assert first == second
    # header + at most 3 category lines + optional stage line
    assert len(first) <= 5
    assert first[0].startswith("trace diff (base -> run): makespan ")
