"""Chrome trace-event export: schema, track mapping, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.engine import BatchExecutor
from repro.obs import (
    TraceExportError,
    TraceRecorder,
    chrome_trace,
    critical_path_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import SCALE
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import APPROVAL_HEAVY_MIX, TokenWorkloadGenerator


def traced_engine_run():
    tracer = TraceRecorder()
    token = ERC20TokenType(48, total_supply=4800)
    items = TokenWorkloadGenerator(
        48, seed=5, mix=APPROVAL_HEAVY_MIX
    ).generate(192)
    BatchExecutor(
        token, num_lanes=4, seed=5, tracer=tracer
    ).run_workload(items)
    return tracer


class TestChromeTrace:
    def test_real_run_passes_the_validator(self):
        document = chrome_trace(traced_engine_run())
        validate_chrome_trace(document)  # raises on any violation
        assert document["otherData"]["virtual_time_scale"] == SCALE
        assert document["otherData"]["makespan"] > 0

    def test_every_track_is_named_and_addressed(self):
        tracer = traced_engine_run()
        document = chrome_trace(tracer)
        named = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert named == set(tracer.tracks())

    def test_dotted_tracks_share_a_process(self):
        tracer = TraceRecorder()
        tracer.span("node1.lane0", "op 1", "execute", 0.0, 1.0)
        tracer.span("node1.lane1", "op 2", "execute", 0.0, 1.0)
        tracer.span("node2.lane0", "op 3", "execute", 0.0, 1.0)
        tracer.span("router", "dispatch", "dispatch_stall", 0.0, 0.0)
        events = chrome_trace(tracer)["traceEvents"]
        pid_of = {
            event["args"]["name"]: event["pid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert pid_of["node1.lane0"] == pid_of["node1.lane1"]
        assert pid_of["node1.lane0"] != pid_of["node2.lane0"]
        assert pid_of["router"] not in (
            pid_of["node1.lane0"], pid_of["node2.lane0"]
        )

    def test_stalls_tile_backward_from_the_span(self):
        tracer = TraceRecorder()
        tracer.span(
            "lane0",
            "op 1",
            "execute",
            10.0,
            12.0,
            stalls=(("sync_wait", 3.0), ("frontier_stall", 2.0)),
        )
        events = chrome_trace(tracer)["traceEvents"]
        waits = [e for e in events if e["name"].startswith("wait:")]
        spans = [e for e in events if e["name"] == "op 1"]
        assert [w["name"] for w in waits] == [
            "wait:frontier_stall", "wait:sync_wait"
        ]
        # The wait boxes tile [start - total_stall, start) in order.
        assert waits[0]["ts"] == pytest.approx(5.0 * SCALE)
        assert waits[0]["dur"] == pytest.approx(2.0 * SCALE)
        assert waits[1]["ts"] == pytest.approx(7.0 * SCALE)
        assert waits[1]["dur"] == pytest.approx(3.0 * SCALE)
        assert spans[0]["ts"] == pytest.approx(10.0 * SCALE)

    def test_instants_become_i_events(self):
        tracer = TraceRecorder()
        tracer.span("engine", "round 0", "execute", 0.0, 1.0)
        tracer.instant("engine", "round 0 classified", 0.5, {"windows": 1})
        events = chrome_trace(tracer)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == pytest.approx(0.5 * SCALE)
        assert instants[0]["args"] == {"windows": 1}


class TestWriteRoundTrip:
    def test_written_file_reloads_and_validates(self, tmp_path):
        tracer = traced_engine_run()
        report = critical_path_report(tracer).check()
        path = tmp_path / "trace.json"
        document = write_chrome_trace(
            tracer, path, metadata={"attribution": report.as_dict()}
        )
        reloaded = json.loads(path.read_text())
        assert reloaded == document
        validate_chrome_trace(reloaded)
        attribution = reloaded["otherData"]["attribution"]
        assert attribution["makespan"] == pytest.approx(tracer.makespan)
        assert sum(attribution["totals"].values()) == pytest.approx(
            attribution["makespan"]
        )


class TestValidatorRejects:
    def test_non_object_document(self):
        with pytest.raises(TraceExportError):
            validate_chrome_trace([])

    def test_missing_trace_events(self):
        with pytest.raises(TraceExportError):
            validate_chrome_trace({"otherData": {}})

    def test_unknown_phase(self):
        event = {"ph": "B", "pid": 1, "tid": 1, "name": "x", "ts": 0}
        with pytest.raises(TraceExportError):
            validate_chrome_trace({"traceEvents": [event]})

    def test_missing_required_key_is_named(self):
        event = {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0}
        with pytest.raises(TraceExportError, match="'dur'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_negative_duration(self):
        event = {
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "name": "x",
            "ts": 0,
            "dur": -1,
        }
        with pytest.raises(TraceExportError):
            validate_chrome_trace({"traceEvents": [event]})

    def test_bad_instant_scope(self):
        event = {
            "ph": "i",
            "pid": 1,
            "tid": 1,
            "name": "x",
            "ts": 0,
            "s": "z",
        }
        with pytest.raises(TraceExportError):
            validate_chrome_trace({"traceEvents": [event]})
