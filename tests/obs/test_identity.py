"""Attaching a tracer must not change a single observable output.

Every instrumentation site is guarded by ``if self.tracer is not None``;
these tests pin that contract by running the same workload with and
without a recorder and asserting final state, responses, and the full
stats dict are bit-identical — across the barrier engine, the DAG
scheduler, team lanes, the pipelined engine, and the cluster in its
barrier, pipelined, and unit-dispatch modes.
"""

from __future__ import annotations

import pytest

from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.obs import TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
)

ACCOUNTS = 48
OPS = 256


def make_items(mix):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=11, mix=mix
    ).generate(OPS)


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


CONFIGS = [
    (
        "engine",
        APPROVAL_HEAVY_MIX,
        lambda tracer: BatchExecutor(
            make_token(), num_lanes=4, seed=11, tracer=tracer
        ),
    ),
    (
        "engine_dag",
        CHAIN_HEAVY_MIX,
        lambda tracer: BatchExecutor(
            make_token(),
            num_lanes=4,
            seed=11,
            dag_scheduling=True,
            tracer=tracer,
        ),
    ),
    (
        "engine_teams",
        APPROVAL_HEAVY_MIX,
        lambda tracer: BatchExecutor(
            make_token(),
            num_lanes=4,
            seed=11,
            team_threshold=4,
            tracer=tracer,
        ),
    ),
    (
        "pipelined",
        APPROVAL_HEAVY_MIX,
        lambda tracer: PipelinedExecutor(
            make_token(),
            num_lanes=4,
            pipeline_depth=3,
            seed=11,
            tracer=tracer,
        ),
    ),
    (
        "cluster_barrier",
        APPROVAL_HEAVY_MIX,
        lambda tracer: TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=11,
            tracer=tracer,
        ),
    ),
    (
        "cluster_pipelined",
        APPROVAL_HEAVY_MIX,
        lambda tracer: TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=11,
            pipeline_depth=3,
            tracer=tracer,
        ),
    ),
    (
        "cluster_units",
        CHAIN_HEAVY_MIX,
        lambda tracer: TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=11,
            pipeline_depth=3,
            dag_scheduling=True,
            tracer=tracer,
        ),
    ),
]


@pytest.mark.parametrize(
    "label,mix,build", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
def test_tracer_leaves_every_output_bit_identical(label, mix, build):
    items = make_items(mix)
    bare_state, bare_responses, bare_stats = build(None).run_workload(
        items
    )
    tracer = TraceRecorder()
    traced_state, traced_responses, traced_stats = build(
        tracer
    ).run_workload(items)

    assert tracer.spans, "the traced run recorded nothing"
    assert traced_state == bare_state
    assert traced_responses == bare_responses
    assert traced_stats.as_dict() == bare_stats.as_dict()


@pytest.mark.parametrize(
    "label,mix,build", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
def test_live_series_watch_hook_leaves_outputs_bit_identical(
    label, mix, build
):
    """The registry watch hook (and a TimeSeries derived through it) is
    a pure reader like the tracer itself: subscribing must not change a
    single observable output, and the windows it collects must conserve
    the registry totals."""
    from repro.obs import TimeSeries

    items = make_items(mix)
    bare_state, bare_responses, bare_stats = build(None).run_workload(
        items
    )
    tracer = TraceRecorder()
    series = TimeSeries(width=25.0).attach(tracer.metrics)
    watched_state, watched_responses, watched_stats = build(
        tracer
    ).run_workload(items)

    assert watched_state == bare_state
    assert watched_responses == bare_responses
    assert watched_stats.as_dict() == bare_stats.as_dict()
    series.check()
    assert sum(series.counter_series("ops_committed")) == len(items)
