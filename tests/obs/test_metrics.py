"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import pytest

from repro.obs import Histogram, MetricsError, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("ops")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("ops")
        with pytest.raises(MetricsError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_summary_of_known_values(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_percentiles_are_monotone_and_bounded(self):
        histogram = Histogram("latency")
        for value in range(1, 201):
            histogram.observe(float(value))
        p50, p99 = histogram.p50, histogram.p99
        assert histogram.min <= p50 <= p99 <= histogram.max
        # The interpolated median of 1..200 lands near 100.
        assert p50 == pytest.approx(100.0, rel=0.35)

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("latency")
        histogram.observe(1e9)  # beyond the largest finite bucket
        assert histogram.p99 == 1e9

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency").p50 == 0.0

    def test_rejects_bad_quantile(self):
        histogram = Histogram("latency")
        histogram.observe(1.0)
        with pytest.raises(MetricsError):
            histogram.percentile(1.5)

    def test_empty_summary_is_all_zeros(self):
        summary = Histogram("latency").summary()
        assert summary == {
            "count": 0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p99": 0.0,
            "p999": 0.0,
        }

    def test_single_sample_every_percentile_is_the_sample(self):
        """Bucket interpolation alone would report a value below the
        lone sample (the bucket's lower half); the [min, max] clamp
        pins every quantile to the only evidence there is."""
        histogram = Histogram("latency")
        histogram.observe(3.0)
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == 3.0

    def test_all_samples_in_one_bucket_stay_within_observed_range(self):
        """Samples clustered at a bucket's top edge: interpolation
        sweeps the bucket, the clamp keeps estimates inside what was
        actually observed."""
        histogram = Histogram("latency")
        for _ in range(100):
            histogram.observe(7.9)  # all in the (4, 8] bucket
        for q in (0.01, 0.5, 0.99, 0.999):
            assert histogram.percentile(q) == 7.9

    def test_p999_orders_into_the_tail(self):
        histogram = Histogram("latency")
        for value in range(1, 1001):
            histogram.observe(float(value))
        assert histogram.p50 <= histogram.p99 <= histogram.p999
        assert histogram.p999 <= histogram.max
        assert histogram.p999 > 900.0


class TestWatch:
    def test_watch_sees_every_update_with_timestamps(self):
        registry = MetricsRegistry()
        seen: list[tuple] = []
        registry.watch(lambda *sample: seen.append(sample))
        registry.counter("ops").inc(ts=1.0)
        registry.counter("ops").inc(2.0)
        registry.gauge("depth").set(4.0, ts=2.5)
        registry.histogram("lat").observe(9.0, ts=3.0)
        assert seen == [
            ("counter", "ops", 1.0, 1.0),
            ("counter", "ops", 2.0, None),
            ("gauge", "depth", 4.0, 2.5),
            ("histogram", "lat", 9.0, 3.0),
        ]

    def test_watch_retrofits_existing_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc(5.0)  # before any watcher: unobserved
        seen: list[tuple] = []
        registry.watch(lambda *sample: seen.append(sample))
        counter.inc(2.0, ts=1.0)
        assert seen == [("counter", "ops", 2.0, 1.0)]

    def test_multiple_watchers_fan_out(self):
        registry = MetricsRegistry()
        first: list[tuple] = []
        second: list[tuple] = []
        registry.watch(lambda *sample: first.append(sample))
        registry.watch(lambda *sample: second.append(sample))
        registry.gauge("g").set(1.0, ts=0.5)
        assert first == second == [("gauge", "g", 1.0, 0.5)]

    def test_unwatched_registry_pays_nothing(self):
        counter = MetricsRegistry().counter("ops")
        assert counter._watch is None


class TestRegistry:
    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("ops")
        with pytest.raises(MetricsError):
            registry.gauge("ops")

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("ops") is registry.counter("ops")

    def test_as_dict_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.0)
        registry.histogram("c").observe(5.0)
        summary = registry.as_dict()
        assert list(summary) == ["a", "b", "c"]
        assert summary["a"] == 1.0
        assert summary["b"] == 2
        assert summary["c"]["count"] == 1

    def test_from_summary_flattens_and_skips_non_numeric(self):
        registry = MetricsRegistry.from_summary(
            {
                "virtual_time": 12.5,
                "nested": {"deep": {"ops": 3}},
                "flag": True,
                "label": "ignored",
                "items": [1, 2, 3],
            }
        )
        assert registry.value("virtual_time") == 12.5
        assert registry.value("nested.deep.ops") == 3.0
        assert registry.value("flag") == 1.0
        assert "label" not in registry
        assert "items" not in registry


class TestStatsProjection:
    def test_engine_stats_registry(self):
        from repro.engine import BatchExecutor
        from repro.objects.erc20 import ERC20TokenType
        from repro.workloads import OWNER_ONLY_MIX, TokenWorkloadGenerator

        engine = BatchExecutor(ERC20TokenType(16, total_supply=160))
        items = TokenWorkloadGenerator(
            16, seed=1, mix=OWNER_ONLY_MIX
        ).generate(64)
        _, _, stats = engine.run_workload(items)
        registry = stats.registry()
        assert registry.value("virtual_time") == stats.virtual_time
        assert registry.value("ops_executed") == stats.ops_executed

    def test_cluster_stats_registry_includes_node_bills(self):
        from repro.cluster import TokenCluster
        from repro.objects.erc20 import ERC20TokenType
        from repro.workloads import OWNER_ONLY_MIX, TokenWorkloadGenerator

        cluster = TokenCluster(
            ERC20TokenType(16, total_supply=160), num_nodes=2
        )
        items = TokenWorkloadGenerator(
            16, seed=1, mix=OWNER_ONLY_MIX
        ).generate(64)
        _, _, stats = cluster.run_workload(items)
        registry = stats.registry()
        assert registry.value("makespan") == stats.makespan
        assert registry.value("node0.ops_executed") == (
            stats.node_bills[0].ops_executed
        )
        assert "node_bills" not in registry
