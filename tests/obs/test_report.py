"""Makespan attribution: exact-sum invariant across every layer."""

from __future__ import annotations

import pytest

from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.obs import (
    AttributionReport,
    CATEGORIES,
    TraceError,
    TraceRecorder,
    critical_path_report,
)
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import APPROVAL_HEAVY_MIX, TokenWorkloadGenerator

ACCOUNTS = 48
OPS = 192


def make_items(seed=5):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=seed, mix=APPROVAL_HEAVY_MIX
    ).generate(OPS)


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


class TestHandBuilt:
    def test_empty_tracer_reports_zero(self):
        report = critical_path_report(TraceRecorder())
        assert report.makespan == 0.0
        assert report.attributed == 0.0
        report.check()

    def test_single_span_is_all_execute(self):
        tracer = TraceRecorder()
        tracer.span("lane0", "op 1", "execute", 0.0, 5.0)
        report = critical_path_report(tracer).check()
        assert report.makespan == 5.0
        assert report.totals == {"execute": 5.0}

    def test_stalls_and_gaps_are_charged(self):
        tracer = TraceRecorder()
        # [0, 2) execute, [2, 3) unexplained, [3, 5) sync wait
        # (recorded as the second span's stall), [5, 9) execute.
        tracer.span("lane0", "op 1", "execute", 0.0, 2.0)
        tracer.span(
            "lane0", "op 2", "execute", 5.0, 9.0, stalls=(("sync_wait", 2.0),)
        )
        report = critical_path_report(tracer).check()
        assert report.makespan == 9.0
        assert report.totals["execute"] == pytest.approx(6.0)
        assert report.totals["sync_wait"] == pytest.approx(2.0)
        assert report.totals["network"] == pytest.approx(1.0)

    def test_informational_spans_are_excluded(self):
        tracer = TraceRecorder()
        tracer.span("lane0", "op 1", "execute", 0.0, 4.0)
        tracer.span(
            "sync.global", "order", "sync_wait", 0.0, 40.0, chain=False
        )
        report = critical_path_report(tracer).check()
        assert report.makespan == 4.0
        assert report.totals == {"execute": 4.0}

    def test_share_and_as_dict(self):
        tracer = TraceRecorder()
        tracer.span("lane0", "op 1", "execute", 1.0, 5.0)
        report = critical_path_report(tracer).check()
        assert report.share("execute") == pytest.approx(0.8)
        assert report.share("lease_wait") == 0.0
        as_dict = report.as_dict()
        assert as_dict["makespan"] == 5.0
        assert set(as_dict["totals"]) == set(CATEGORIES)

    def test_check_raises_on_tampered_totals(self):
        report = AttributionReport(makespan=10.0, totals={"execute": 7.0})
        with pytest.raises(TraceError):
            report.check()

    def test_render_mentions_every_nonzero_category(self):
        tracer = TraceRecorder()
        tracer.span(
            "lane0",
            "op 1",
            "execute",
            3.0,
            5.0,
            stalls=(("frontier_stall", 3.0),),
        )
        text = "\n".join(critical_path_report(tracer).check().render())
        assert "execute" in text
        assert "frontier_stall" in text
        assert "lease_wait" not in text


def traced_runs():
    def engine(tracer):
        BatchExecutor(
            make_token(), num_lanes=4, seed=5, tracer=tracer
        ).run_workload(make_items())

    def pipelined(tracer):
        PipelinedExecutor(
            make_token(),
            num_lanes=4,
            pipeline_depth=3,
            seed=5,
            tracer=tracer,
        ).run_workload(make_items())

    def cluster(tracer):
        TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=5,
            pipeline_depth=3,
            tracer=tracer,
        ).run_workload(make_items())

    return [
        ("engine", engine),
        ("pipelined", pipelined),
        ("cluster", cluster),
    ]


@pytest.mark.parametrize(
    "label,run", traced_runs(), ids=[label for label, _ in traced_runs()]
)
class TestExactSum:
    def test_totals_partition_the_makespan(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        report = critical_path_report(tracer)
        report.check()  # raises unless the sum is exact
        assert report.makespan > 0
        assert report.totals.get("execute", 0.0) > 0
        assert all(amount >= 0 for amount in report.totals.values())
        assert set(report.totals) <= set(CATEGORIES)

    def test_segments_tile_the_timeline(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        report = critical_path_report(tracer)
        # Segments are appended walking backward: latest first,
        # contiguous, covering [0, makespan].
        assert report.segments[0].end == pytest.approx(report.makespan)
        assert report.segments[-1].start == pytest.approx(0.0)
        for later, earlier in zip(report.segments, report.segments[1:]):
            assert later.start == pytest.approx(earlier.end)
