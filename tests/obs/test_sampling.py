"""The ring-buffer (sampling) recorder's contract: span detail is
bounded, the additive occupancy accounting stays *exact* (identical to
an unbounded recorder on the same run), the critical-path walk refuses
an evicted span set instead of silently lying, and a generous bound that
never evicts stays bit-identical to no bound at all.
"""

from __future__ import annotations

import pytest
from test_identity import CONFIGS, make_items

from repro.obs import (
    TraceError,
    TraceRecorder,
    chrome_trace,
    critical_path_report,
    trace_from_chrome,
    utilization_report,
)

IDS = [label for label, _, _ in CONFIGS]
MAX_SPANS = 48


def record(build, mix, max_spans=None):
    tracer = TraceRecorder(max_spans=max_spans)
    build(tracer).run_workload(make_items(mix))
    return tracer


@pytest.mark.parametrize("label,mix,build", CONFIGS, ids=IDS)
def test_ring_buffer_bounds_spans_but_keeps_exact_totals(
    label, mix, build
):
    full = record(build, mix)
    sampled = record(build, mix, max_spans=MAX_SPANS)

    assert sampled.sampled
    assert len(sampled.spans) == MAX_SPANS
    assert sampled.spans_recorded == full.spans_recorded
    assert sampled.spans_evicted == full.spans_recorded - MAX_SPANS
    # The retained window is the *newest* spans, in recording order.
    assert sampled.spans == full.spans[-MAX_SPANS:]

    # Occupancy accounting survives eviction exactly.
    assert sampled.makespan == full.makespan
    assert sampled.busy_totals() == full.busy_totals()
    assert sampled.stall_totals() == full.stall_totals()
    for category, amount in full.category_totals().items():
        assert sampled.category_totals()[category] == pytest.approx(
            amount, abs=1e-9
        )

    # ... so the utilization report is identical too (bar the flag).
    full_report = utilization_report(full).check()
    sampled_report = utilization_report(sampled).check()
    assert sampled_report.sampled and not full_report.sampled
    full_dict = full_report.as_dict()
    sampled_dict = sampled_report.as_dict()
    full_dict.pop("sampled")
    sampled_dict.pop("sampled")
    assert sampled_dict == full_dict


def _engine():
    return next(
        (mix, build)
        for label, mix, build in CONFIGS
        if label == "engine"
    )


def test_walk_refuses_an_evicted_span_set():
    mix, build = _engine()
    sampled = record(build, mix, max_spans=MAX_SPANS)
    with pytest.raises(TraceError, match="evicted"):
        critical_path_report(sampled)


def test_generous_bound_never_evicts_and_changes_nothing():
    mix, build = _engine()
    unbounded = record(build, mix)
    bounded = record(build, mix, max_spans=10**6)
    assert not bounded.sampled
    assert bounded.spans_evicted == 0
    assert bounded.spans == unbounded.spans
    assert bounded.instants == unbounded.instants
    report = critical_path_report(bounded).check()
    assert report.as_dict() == critical_path_report(
        unbounded
    ).check().as_dict()


def test_sampled_document_round_trip_preserves_exact_accounting():
    mix, build = _engine()
    sampled = record(build, mix, max_spans=MAX_SPANS)
    document = chrome_trace(sampled)
    other = document["otherData"]
    assert other["sampled"] is True
    assert other["spans_retained"] == MAX_SPANS
    assert other["spans_recorded"] == sampled.spans_recorded

    restored = trace_from_chrome(document)
    assert restored.sampled
    assert restored.makespan == pytest.approx(sampled.makespan)
    for category, amount in sampled.category_totals().items():
        assert restored.category_totals()[category] == pytest.approx(
            amount, abs=1e-9
        )
    assert restored.busy_totals().keys() == sampled.busy_totals().keys()


def test_max_spans_must_be_positive():
    with pytest.raises(TraceError):
        TraceRecorder(max_spans=0)
