"""CLI-level coverage for the observability scripts: ``diff_trace.py``
(explain two exported traces), ``validate_trace.py`` (sampled-trace
schema), and ``check_bench.py --explain`` (gate failure → trace diff),
all driven exactly the way CI drives them — as subprocesses.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    TraceRecorder,
    chrome_trace,
    critical_path_report,
    write_chrome_trace,
)

ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPTS = ROOT / "scripts"


def run_script(name: str, *args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(SCRIPTS / name), *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )


def make_trace(path: Path, slow: float = 0.0) -> None:
    """A tiny two-lane run; ``slow`` stretches lane 1's execute time."""
    tracer = TraceRecorder()
    tracer.op_submit(1, 0.0)
    tracer.span("lane.0", "op 1", "execute", 0.0, 4.0)
    tracer.op_commit(1, 4.0)
    tracer.op_submit(2, 0.0)
    tracer.span(
        "lane.1",
        "op 2",
        "execute",
        2.0,
        6.0 + slow,
        stalls=(("sync_wait", 2.0),),
    )
    tracer.op_commit(2, 6.0 + slow)
    report = critical_path_report(tracer).check()
    write_chrome_trace(
        tracer, path, metadata={"attribution": report.as_dict()}
    )


def test_diff_trace_self_diff_reports_no_movement(tmp_path):
    trace = tmp_path / "a.json"
    make_trace(trace)
    result = run_script("diff_trace.py", trace, trace)
    assert result.returncode == 0, result.stderr
    assert "no attribution movement" in result.stdout


def test_diff_trace_ranked_explanation_repartitions_the_delta(tmp_path):
    base, run, payload = (
        tmp_path / "base.json",
        tmp_path / "run.json",
        tmp_path / "diff.json",
    )
    make_trace(base)
    make_trace(run, slow=3.0)
    result = run_script(
        "diff_trace.py", base, run, "--json", payload
    )
    assert result.returncode == 0, result.stderr
    assert "trace diff (base.json -> run.json)" in result.stdout
    assert "execute" in result.stdout
    diff = json.loads(payload.read_text())
    assert diff["exact"] is True
    assert sum(
        entry["delta"] for entry in diff["categories"]
    ) == pytest.approx(diff["makespan_delta"], abs=1e-9)
    # Ranked: the stretched execute time is the top mover.
    assert diff["categories"][0]["category"] == "execute"
    assert diff["categories"][0]["delta"] == pytest.approx(3.0)


def test_diff_trace_fails_cleanly_on_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    good = tmp_path / "good.json"
    make_trace(good)
    result = run_script("diff_trace.py", good, bad)
    assert result.returncode == 1
    assert "trace diff FAILED" in result.stdout


def sampled_document():
    tracer = TraceRecorder(max_spans=4)
    for i in range(10):
        tracer.op_submit(i, float(i))
        tracer.span("lane.0", f"op {i}", "execute", float(i), i + 1.0)
        tracer.op_commit(i, i + 1.0)
    assert tracer.sampled
    return chrome_trace(tracer)


def test_validate_trace_accepts_a_sampled_trace(tmp_path):
    trace = tmp_path / "sampled.json"
    trace.write_text(json.dumps(sampled_document()))
    result = run_script("validate_trace.py", trace)
    assert result.returncode == 0, result.stdout
    assert "sampled (4 of 10 spans retained" in result.stdout


def test_validate_trace_rejects_a_full_trace_claiming_sampling(tmp_path):
    trace = tmp_path / "liar.json"
    make_trace(trace)
    document = json.loads(trace.read_text())
    document["otherData"]["sampled"] = True
    document["otherData"]["spans_retained"] = 2
    document["otherData"]["spans_recorded"] = 2
    document["otherData"].pop("attribution")
    trace.write_text(json.dumps(document))
    result = run_script("validate_trace.py", trace)
    assert result.returncode == 1
    assert "a full trace claiming to be sampled" in result.stdout


def test_validate_trace_rejects_attribution_on_a_sampled_trace(tmp_path):
    document = sampled_document()
    document["otherData"]["attribution"] = {
        "makespan": 10.0,
        "totals": {"execute": 10.0},
    }
    trace = tmp_path / "sampled.json"
    trace.write_text(json.dumps(document))
    result = run_script("validate_trace.py", trace)
    assert result.returncode == 1
    assert "cannot carry a critical-path attribution" in result.stdout


def test_check_bench_explain_produces_an_explanation(tmp_path):
    """Tamper one headline metric in a copied baseline: the gate must
    fail, and --explain must re-run the bench traced, diff it against
    the committed baseline trace, and write the explanation artifact."""
    baselines = ROOT / "benchmarks" / "baselines"
    baseline = json.loads((baselines / "BENCH_pipeline.json").read_text())
    baseline["engine"]["approval_heavy"]["barrier"]["virtual_time"] *= 2
    tampered = tmp_path / "BENCH_pipeline.json"
    tampered.write_text(json.dumps(baseline))
    out = tmp_path / "explanation_pipeline.txt"
    result = run_script(
        "check_bench.py",
        "pipeline",
        "--run",
        baselines / "BENCH_pipeline.json",
        "--baseline",
        tampered,
        "--explain",
        "--explain-out",
        out,
    )
    assert result.returncode == 1
    assert "bench-regression gate FAILED for pipeline" in result.stdout
    assert "trace diff (baseline -> run)" in result.stdout
    lines = out.read_text().splitlines()
    assert len(lines) >= 2
    assert any("trace diff" in line for line in lines)
