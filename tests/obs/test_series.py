"""TimeSeries: windowing, both derivations, and the conservation law.

The property that matters: summing any windowed quantity over all
windows reproduces the unwindowed source total exactly — registry
totals for live series, ``category_totals()`` / lifecycle counts for
post-hoc ones.  It is checked here across every traced configuration
the identity suite pins (barrier, DAG, teams, pipelined, and the three
cluster modes), at several window widths, so no scheduling path can
leak samples between windows unnoticed.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    SeriesError,
    TimeSeries,
    TraceRecorder,
)
from repro.obs.trace import TraceError

from tests.obs.test_identity import CONFIGS, make_items


def traced(build, mix):
    tracer = TraceRecorder()
    build(tracer).run_workload(make_items(mix))
    return tracer


# ---------------------------------------------------------------------------
# interval_occupancy (the post-hoc windowing primitive)
# ---------------------------------------------------------------------------


def make_traced_engine():
    label, mix, build = CONFIGS[0]
    return traced(build, mix)


def test_interval_occupancy_full_range_is_category_totals():
    tracer = make_traced_engine()
    totals = tracer.category_totals()
    # Stalls tile backward from span starts, so the full cover starts
    # below zero when the earliest span records waits.
    occupancy = tracer.interval_occupancy(
        -tracer.makespan, tracer.makespan
    )
    assert set(occupancy) == set(totals)
    for category, amount in totals.items():
        assert occupancy[category] == pytest.approx(amount, rel=1e-9)


def test_interval_occupancy_partition_is_additive():
    tracer = make_traced_engine()
    lo, hi = -tracer.makespan, tracer.makespan
    cuts = [lo + (hi - lo) * index / 7 for index in range(8)]
    summed: dict[str, float] = {}
    for t0, t1 in zip(cuts, cuts[1:]):
        for category, amount in tracer.interval_occupancy(t0, t1).items():
            summed[category] = summed.get(category, 0.0) + amount
    for category, amount in tracer.category_totals().items():
        assert summed[category] == pytest.approx(amount, rel=1e-9)


def test_interval_occupancy_empty_and_disjoint_intervals():
    tracer = make_traced_engine()
    assert tracer.interval_occupancy(5.0, 5.0) == {}
    after = tracer.makespan + 10.0
    assert tracer.interval_occupancy(after, after + 50.0) == {}


def test_interval_occupancy_rejects_reversed_interval():
    tracer = make_traced_engine()
    with pytest.raises(TraceError):
        tracer.interval_occupancy(10.0, 5.0)


def test_interval_occupancy_refuses_a_sampled_recorder():
    label, mix, build = CONFIGS[0]
    tracer = TraceRecorder(max_spans=4)
    build(tracer).run_workload(make_items(mix))
    assert tracer.sampled
    with pytest.raises(TraceError):
        tracer.interval_occupancy(0.0, tracer.makespan)


# ---------------------------------------------------------------------------
# the conservation property, across every traced configuration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "label,mix,build", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
@pytest.mark.parametrize("fraction", [1 / 3, 1 / 7, 1 / 16])
def test_post_hoc_series_conserve_every_total(label, mix, build, fraction):
    tracer = traced(build, mix)
    width = max(1e-3, tracer.makespan * fraction)
    series = TimeSeries.from_trace(tracer, width)
    series.check()  # raises SeriesError on any broken sum
    assert series.window_count >= 1
    committed = series.counter_series("ops_committed")
    assert sum(committed) == tracer.metrics.counter(
        "ops_committed"
    ).value
    assert len(committed) == series.window_count


@pytest.mark.parametrize(
    "label,mix,build", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
def test_live_series_match_post_hoc_series(label, mix, build):
    """The two derivations agree where they overlap: identical windowed
    op counters and latency histograms, sample for sample."""
    tracer = TraceRecorder()
    live = TimeSeries(width=10.0).attach(tracer.metrics)
    build(tracer).run_workload(make_items(mix))
    live.check()
    post = TimeSeries.from_trace(tracer, 10.0)
    post.check()
    for name in ("ops_submitted", "ops_committed"):
        assert live.counter_series(name) == post.counter_series(name)
    live_windows = live.histogram_series("op_latency")
    post_windows = post.histogram_series("op_latency")
    assert len(live_windows) <= len(post_windows)
    for live_h, post_h in zip(live_windows, post_windows):
        if live_h is None:
            assert post_h is None or post_h.count == 0
            continue
        assert post_h is not None
        assert live_h.count == post_h.count
        assert live_h.total == pytest.approx(post_h.total)


# ---------------------------------------------------------------------------
# windowing mechanics and misuse
# ---------------------------------------------------------------------------


def test_window_bounds_and_counter_buckets():
    series = TimeSeries(width=5.0)
    registry = MetricsRegistry()
    series.attach(registry)
    registry.counter("hits").inc(ts=1.0)
    registry.counter("hits").inc(ts=4.9)
    registry.counter("hits").inc(ts=5.0)
    registry.counter("hits").inc(ts=12.0)
    assert series.window_count == 3
    assert series.counter_series("hits") == [2.0, 1.0, 1.0]
    assert series.window_bounds(1) == (5.0, 10.0)
    series.check()


def test_untimestamped_samples_land_at_the_cursor():
    series = TimeSeries(width=2.0)
    registry = MetricsRegistry()
    series.attach(registry)
    registry.counter("n").inc(ts=7.0)
    registry.counter("n").inc()  # no ts: lands with the latest window
    assert series.counter_series("n")[3] == 2.0
    series.check()


def test_attach_baselines_preexisting_totals():
    registry = MetricsRegistry()
    registry.counter("n").inc(40.0)
    registry.histogram("h").observe(3.0)
    series = TimeSeries(width=1.0).attach(registry)
    registry.counter("n").inc(2.0, ts=0.5)
    registry.histogram("h").observe(5.0, ts=0.5)
    series.check()  # windows sum to the growth, not the full totals
    assert sum(series.counter_series("n")) == 2.0


def test_gauge_series_carries_forward():
    series = TimeSeries(width=1.0)
    registry = MetricsRegistry()
    series.attach(registry)
    registry.gauge("depth").set(3.0, ts=0.5)
    registry.gauge("depth").set(7.0, ts=2.5)
    registry.counter("tick").inc(ts=4.5)  # extends the window range
    assert series.gauge_series("depth") == [3.0, 3.0, 7.0, 7.0, 7.0]


def test_series_misuse_raises():
    with pytest.raises(SeriesError):
        TimeSeries(width=0.0)
    series = TimeSeries(width=1.0)
    with pytest.raises(SeriesError):
        series.check()  # no source attached
    registry = MetricsRegistry()
    series.attach(registry)
    with pytest.raises(SeriesError):
        series.attach(registry)  # exactly one source
    with pytest.raises(SeriesError):
        registry.counter("n").inc(ts=-1.0)  # precedes the origin


def test_as_dict_round_trips_shapes_and_totals():
    tracer = make_traced_engine()
    series = TimeSeries.from_trace(tracer, max(1.0, tracer.makespan / 6))
    exported = series.as_dict()
    windows = exported["windows"]
    assert windows == series.window_count
    for group in ("counters", "gauges", "occupancy"):
        for values in exported[group].values():
            assert len(values) == windows
    for summaries in exported["histograms"].values():
        assert len(summaries) == windows
    totals = exported["totals"]
    assert totals["counters"]["ops_committed"] == sum(
        exported["counters"]["ops_committed"]
    )
    assert set(totals["occupancy"]) == set(
        tracer.category_totals()
    )
