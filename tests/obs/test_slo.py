"""SLOMonitor: per-window p99 verdicts, budget burn, breach instants.

The scenario that matters: a run whose early windows are healthy and
whose later windows carry an injected latency regression.  The monitor
must localize the breach to the regressed windows, burn through the
error budget there (flipping the headline ``met`` verdict), and drop a
breach instant into the trace at each offending window's end.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    SLOError,
    SLOMonitor,
    TimeSeries,
    TraceRecorder,
)


def series_with_latencies(per_window: list[float], width: float = 10.0):
    """A live series whose window ``i`` holds five op_latency samples at
    ``per_window[i]`` virtual-time units."""
    series = TimeSeries(width=width)
    registry = MetricsRegistry()
    series.attach(registry)
    for index, latency in enumerate(per_window):
        ts = index * width + width / 2
        for _ in range(5):
            registry.histogram("op_latency").observe(latency, ts=ts)
    series.check()
    return series


def test_monitor_validates_its_objective():
    with pytest.raises(SLOError):
        SLOMonitor(target_p99=0.0)
    with pytest.raises(SLOError):
        SLOMonitor(target_p99=1.0, horizon=0)
    with pytest.raises(SLOError):
        SLOMonitor(target_p99=1.0, budget=0.0)
    with pytest.raises(SLOError):
        SLOMonitor(target_p99=1.0, budget=1.5)


def test_healthy_run_meets_the_objective():
    series = series_with_latencies([2.0] * 8)
    report = SLOMonitor(target_p99=10.0, horizon=4, budget=0.25).scan(
        series
    )
    assert report.breaches == []
    assert report.max_burn == 0.0
    assert report.met
    assert len(report.windows) == series.window_count


def test_injected_latency_regression_is_detected_and_localized():
    """Healthy for six windows, then the regression: p99 jumps past the
    target and stays there.  The monitor flags exactly those windows,
    burns the budget, and flips the verdict."""
    healthy, regressed = [3.0] * 6, [40.0] * 4
    series = series_with_latencies(healthy + regressed)
    tracer = TraceRecorder()
    monitor = SLOMonitor(target_p99=10.0, horizon=4, budget=0.25)
    report = monitor.scan(series, tracer=tracer)

    assert report.breaches == [6, 7, 8, 9]
    assert not report.met
    # Four breached windows in a horizon of four = breach rate 1.0,
    # burning 4x the budgeted 0.25.
    assert report.max_burn == pytest.approx(4.0)
    # Each breach dropped an instant on the slo track at the window end.
    slo_instants = [i for i in tracer.instants if i.track == "slo"]
    assert [i.ts for i in slo_instants] == [
        series.window_bounds(index)[1] for index in report.breaches
    ]
    for instant in slo_instants:
        assert instant.args["p99"] > instant.args["target"]


def test_empty_windows_cannot_breach():
    """A silent window has no latency evidence: it neither breaches nor
    heals the budget faster than real traffic would."""
    series = TimeSeries(width=10.0)
    registry = MetricsRegistry()
    series.attach(registry)
    registry.histogram("op_latency").observe(50.0, ts=5.0)
    registry.counter("tick").inc(ts=45.0)  # four silent windows after
    series.check()
    report = SLOMonitor(target_p99=10.0, horizon=2, budget=0.5).scan(
        series
    )
    assert report.breaches == [0]
    assert [w.count for w in report.windows] == [1, 0, 0, 0, 0]
    assert all(not w.breached for w in report.windows[1:])


def test_burn_recovers_once_the_horizon_rolls_past():
    series = series_with_latencies([40.0] + [2.0] * 7)
    report = SLOMonitor(target_p99=10.0, horizon=2, budget=0.5).scan(
        series
    )
    assert report.breaches == [0]
    assert report.windows[0].burn == pytest.approx(2.0)
    assert report.windows[1].burn == pytest.approx(1.0)
    assert report.windows[2].burn == 0.0
    assert not report.met  # the breach already overran a horizon
    assert report.as_dict()["breach_windows"] == 1
