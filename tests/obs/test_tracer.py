"""Tracer unit tests plus span well-formedness over real traced runs."""

from __future__ import annotations

import pytest

from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.obs import LIFECYCLE_STAGES, TraceError, TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    CHAIN_HEAVY_MIX,
    TokenWorkloadGenerator,
)

ACCOUNTS = 48
OPS = 192


def make_items(mix=APPROVAL_HEAVY_MIX, seed=5):
    return TokenWorkloadGenerator(ACCOUNTS, seed=seed, mix=mix).generate(OPS)


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


class TestRecorderValidation:
    def test_span_rejects_unknown_category(self):
        with pytest.raises(TraceError):
            TraceRecorder().span("lane0", "op 1", "naptime", 0.0, 1.0)

    def test_span_rejects_negative_duration(self):
        with pytest.raises(TraceError):
            TraceRecorder().span("lane0", "op 1", "execute", 2.0, 1.0)

    def test_span_rejects_bad_stalls(self):
        tracer = TraceRecorder()
        with pytest.raises(TraceError):
            tracer.span(
                "lane0",
                "op 1",
                "execute",
                0.0,
                1.0,
                stalls=(("napping", 1.0),),
            )
        with pytest.raises(TraceError):
            tracer.span(
                "lane0",
                "op 1",
                "execute",
                0.0,
                1.0,
                stalls=(("sync_wait", -0.5),),
            )

    def test_lifecycle_rejects_time_travel(self):
        tracer = TraceRecorder()
        tracer.op_stage(1, "classify", 5.0)
        with pytest.raises(TraceError):
            tracer.op_stage(1, "execute", 4.0)

    def test_lifecycle_first_timestamp_wins(self):
        tracer = TraceRecorder()
        tracer.op_stage(1, "schedule", 3.0)
        tracer.op_stage(1, "schedule", 9.0)
        assert tracer.lifecycle(1) == {"schedule": 3.0}

    def test_unterminated_lists_uncommitted_ops(self):
        tracer = TraceRecorder()
        tracer.op_submit(1, 0.0)
        tracer.op_submit(2, 0.0)
        tracer.op_commit(2, 4.0)
        assert tracer.unterminated() == [1]

    def test_commit_feeds_latency_histogram(self):
        tracer = TraceRecorder()
        tracer.op_submit(7, 1.0)
        tracer.op_commit(7, 4.0)
        histogram = tracer.metrics.histogram("op_latency")
        assert histogram.count == 1
        assert histogram.total == pytest.approx(3.0)

    def test_makespan_ignores_informational_spans(self):
        tracer = TraceRecorder()
        tracer.span("lane0", "op 1", "execute", 0.0, 2.0)
        tracer.span("sync.global", "order", "sync_wait", 0.0, 9.0, chain=False)
        assert tracer.makespan == 2.0


def traced_runs():
    """(label, run) pairs covering every instrumented execution layer."""
    def engine(tracer):
        BatchExecutor(
            make_token(), num_lanes=4, seed=5, tracer=tracer
        ).run_workload(make_items())

    def engine_dag(tracer):
        BatchExecutor(
            make_token(),
            num_lanes=4,
            seed=5,
            dag_scheduling=True,
            tracer=tracer,
        ).run_workload(make_items(CHAIN_HEAVY_MIX))

    def engine_teams(tracer):
        BatchExecutor(
            make_token(),
            num_lanes=4,
            seed=5,
            team_threshold=4,
            tracer=tracer,
        ).run_workload(make_items())

    def pipelined(tracer):
        PipelinedExecutor(
            make_token(),
            num_lanes=4,
            pipeline_depth=3,
            seed=5,
            tracer=tracer,
        ).run_workload(make_items())

    def cluster_barrier(tracer):
        TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=5,
            tracer=tracer,
        ).run_workload(make_items())

    def cluster_pipelined(tracer):
        TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=5,
            pipeline_depth=3,
            tracer=tracer,
        ).run_workload(make_items())

    def cluster_units(tracer):
        TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=5,
            pipeline_depth=3,
            dag_scheduling=True,
            tracer=tracer,
        ).run_workload(make_items(CHAIN_HEAVY_MIX))

    return [
        ("engine", engine),
        ("engine_dag", engine_dag),
        ("engine_teams", engine_teams),
        ("pipelined", pipelined),
        ("cluster_barrier", cluster_barrier),
        ("cluster_pipelined", cluster_pipelined),
        ("cluster_units", cluster_units),
    ]


@pytest.mark.parametrize(
    "label,run", traced_runs(), ids=[label for label, _ in traced_runs()]
)
class TestWellFormedness:
    def test_every_submitted_op_commits(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        assert tracer.op_seqs, "the run recorded no op lifecycles"
        assert tracer.unterminated() == []

    def test_lifecycle_stages_are_monotone(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        order = {stage: i for i, stage in enumerate(LIFECYCLE_STAGES)}
        for seq in tracer.op_seqs:
            life = tracer.lifecycle(seq)
            staged = sorted(life.items(), key=lambda kv: order[kv[0]])
            timestamps = [ts for _, ts in staged]
            assert timestamps == sorted(timestamps), (seq, life)
            assert "submit" in life and "commit" in life, (seq, life)

    def test_chained_spans_never_overlap_within_a_track(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        by_track: dict[str, list] = {}
        for span in tracer.spans:
            assert span.end >= span.start
            if span.chain and span.duration > 0:
                by_track.setdefault(span.track, []).append(span)
        assert by_track, "the run recorded no chained spans"
        for track, spans in by_track.items():
            spans.sort(key=lambda s: (s.start, s.end))
            for before, after in zip(spans, spans[1:]):
                assert before.end <= after.start + 1e-9, (track, before, after)

    def test_makespan_covers_every_chained_span(self, label, run):
        tracer = TraceRecorder()
        run(tracer)
        makespan = tracer.makespan
        assert makespan > 0
        for span in tracer.spans:
            if span.chain:
                assert span.end <= makespan + 1e-9
