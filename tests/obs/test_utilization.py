"""Per-track occupancy: busy + stall + idle fractions sum to 1 on every
chained track of every traced configuration, queue-only tracks (the
router's dispatch gate) are reported as overlap-tolerant aggregates, and
the team-lane pool's spin-up/GC churn is attributed from its instants.
"""

from __future__ import annotations

import pytest
from test_identity import CONFIGS, make_items

from repro.net.team_lanes import TeamLanePool
from repro.obs import (
    QueueWait,
    TraceError,
    TraceRecorder,
    lane_churn,
    utilization_report,
)
from repro.obs.utilization import POOL_TRACK, TrackUtilization

IDS = [label for label, _, _ in CONFIGS]


def record(build, mix, max_spans=None):
    tracer = TraceRecorder(max_spans=max_spans)
    build(tracer).run_workload(make_items(mix))
    return tracer


@pytest.mark.parametrize("label,mix,build", CONFIGS, ids=IDS)
def test_fractions_sum_to_one_on_every_track(label, mix, build):
    report = utilization_report(record(build, mix)).check()
    assert report.makespan > 0
    assert report.tracks, "no chained track carried any occupancy"
    for track in report.tracks:
        fractions = track.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-9)
        assert fractions["busy"] >= 0
        assert fractions["stall"] >= 0
        assert fractions["idle"] >= -1e-9
    # Something actually executed.
    assert any(t.busy_time > 0 for t in report.tracks)


@pytest.mark.parametrize(
    "label", ["cluster_pipelined", "cluster_units"]
)
def test_router_dispatch_gate_is_a_queue_not_a_timeline(label):
    mix, build = next(
        (mix, build) for lbl, mix, build in CONFIGS if lbl == label
    )
    report = utilization_report(record(build, mix)).check()
    queues = {queue.track: queue for queue in report.queues}
    assert queues, "the cluster router recorded no dispatch-gate waits"
    for queue in queues.values():
        assert isinstance(queue, QueueWait)
        assert queue.total > 0
        # The waits belong to concurrently queued units: their sum may
        # exceed the makespan, which is exactly why they are not
        # busy/stall/idle fractions.
    # No fractions track duplicates a queue track.
    assert not set(queues) & {t.track for t in report.tracks}
    # The queue aggregate renders with its overlap disclaimer.
    assert any("overlaps allowed" in line for line in report.render())


def test_zero_extent_track_has_zero_fractions():
    track = TrackUtilization(
        track="t", extent=0.0, busy={}, stalls={}
    )
    assert track.fractions() == {"busy": 0.0, "stall": 0.0, "idle": 0.0}


def test_over_committed_track_is_rejected():
    tracer = TraceRecorder()
    tracer.span("lane.0", "op", "execute", 0.0, 2.0)
    # Forge accumulator drift: more busy time than the span list holds.
    tracer._busy["lane.0"]["execute"] += 5.0
    with pytest.raises(TraceError):
        utilization_report(tracer)


def test_engine_team_lanes_report_spinup_churn():
    mix, build = next(
        (mix, build)
        for label, mix, build in CONFIGS
        if label == "engine_teams"
    )
    tracer = record(build, mix)
    report = utilization_report(tracer).check()
    churn = report.lanes
    assert churn is not None
    assert churn.spinups > 0
    assert churn.peak_live >= 1
    assert len(churn.teams) >= 1
    # No idle_ttl on the engine path -> lanes live forever, zero GC.
    assert churn.collections == 0
    assert any("team lanes:" in line for line in report.render())


def test_pool_gc_churn_is_attributed():
    """Drive a pool with idle_ttl=1 directly: the second round's
    disjoint team forces the first lane idle, so it is collected — and
    both lifecycle edges land on the pool track as instants."""
    tracer = TraceRecorder()
    pool = TeamLanePool(idle_ttl=1, seed=3)
    pool.tracer = tracer
    pool.order([((0, 1), ["a", "b"])])
    pool.order([((2, 3), ["c"])])
    pool.order([((4, 5), ["d"])])
    assert pool.lanes_gcd > 0
    churn = lane_churn(tracer)
    assert churn is not None
    assert churn.spinups == 3
    assert churn.collections == pool.lanes_gcd
    assert churn.peak_live <= 2
    assert len(churn.teams) == 3
    names = {
        instant.name
        for instant in tracer.instants
        if instant.track == POOL_TRACK
    }
    assert names == {"lane spin-up", "lane gc"}


def test_lane_churn_is_none_without_a_pool():
    tracer = TraceRecorder()
    tracer.span("lane.0", "op", "execute", 0.0, 1.0)
    assert lane_churn(tracer) is None
    assert utilization_report(tracer).lanes is None
