"""Property-based tests (hypothesis) for the ERC20 token object."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.partition import synchronization_level
from repro.analysis.spenders import enabled_spenders, potential_spenders
from repro.objects.erc20 import ERC20TokenType
from repro.spec.operation import Operation

MAX_ACCOUNTS = 5


@st.composite
def token_operations(draw, num_accounts: int):
    """A random domain-valid ERC20 invocation."""
    pid = draw(st.integers(0, num_accounts - 1))
    kind = draw(
        st.sampled_from(
            ["transfer", "transferFrom", "approve", "balanceOf", "allowance", "totalSupply"]
        )
    )
    account = st.integers(0, num_accounts - 1)
    value = st.integers(0, 12)
    if kind == "transfer":
        operation = Operation(kind, (draw(account), draw(value)))
    elif kind == "transferFrom":
        operation = Operation(kind, (draw(account), draw(account), draw(value)))
    elif kind == "approve":
        operation = Operation(kind, (draw(account), draw(value)))
    elif kind == "balanceOf":
        operation = Operation(kind, (draw(account),))
    elif kind == "allowance":
        operation = Operation(kind, (draw(account), draw(account)))
    else:
        operation = Operation("totalSupply")
    return pid, operation


@st.composite
def executions(draw):
    num_accounts = draw(st.integers(2, MAX_ACCOUNTS))
    supply = draw(st.integers(0, 30))
    steps = draw(st.lists(token_operations(num_accounts), max_size=40))
    return num_accounts, supply, steps


class TestInvariants:
    @given(executions())
    @settings(max_examples=120, deadline=None)
    def test_supply_conservation(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state, _ = token.run(steps)
        assert state.total_supply == supply

    @given(executions())
    @settings(max_examples=120, deadline=None)
    def test_balances_and_allowances_stay_natural(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state = token.initial_state()
        for pid, operation in steps:
            state, _ = token.apply(state, pid, operation)
            assert all(balance >= 0 for balance in state.balances)
            assert all(
                allowance >= 0 for row in state.allowances for allowance in row
            )

    @given(executions())
    @settings(max_examples=120, deadline=None)
    def test_false_responses_leave_state_unchanged(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state = token.initial_state()
        for pid, operation in steps:
            successor, response = token.apply(state, pid, operation)
            if response is False:
                assert successor == state
            state = successor

    @given(executions())
    @settings(max_examples=100, deadline=None)
    def test_reads_never_modify(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state, _ = token.run(steps)
        for name in ("balanceOf", "allowance", "totalSupply"):
            if name == "balanceOf":
                operation = Operation(name, (0,))
            elif name == "allowance":
                operation = Operation(name, (0, 1))
            else:
                operation = Operation(name)
            successor, _ = token.apply(state, 0, operation)
            assert successor == state

    @given(executions())
    @settings(max_examples=100, deadline=None)
    def test_sigma_laws(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state, _ = token.run(steps)
        for account in range(num_accounts):
            sigma = enabled_spenders(state, account)
            assert account in sigma  # the owner is always enabled
            assert sigma <= potential_spenders(state, account)
            if state.balance(account) == 0:
                assert sigma == {account}

    @given(executions())
    @settings(max_examples=100, deadline=None)
    def test_level_bounds(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state, _ = token.run(steps)
        level = synchronization_level(state)
        assert 1 <= level <= num_accounts

    @given(executions())
    @settings(max_examples=80, deadline=None)
    def test_transfer_pairs_on_distinct_accounts_commute(self, execution):
        num_accounts, supply, steps = execution
        token = ERC20TokenType(num_accounts, total_supply=supply)
        state, _ = token.run(steps)
        # Funded distinct source accounts with distinct destinations commute.
        sources = [a for a in range(num_accounts) if state.balance(a) >= 2]
        if len(sources) < 2:
            return
        p, q = sources[0], sources[1]
        op_p = Operation("transfer", (q, 1))
        op_q = Operation("transfer", (p, 1))
        s_pq, _ = token.run([(p, op_p), (q, op_q)], state=state)
        s_qp, _ = token.run([(q, op_q), (p, op_p)], state=state)
        assert s_pq == s_qp


class TestApproveSemantics:
    @given(
        st.integers(2, MAX_ACCOUNTS),
        st.integers(0, 20),
        st.integers(0, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_approve_overwrites(self, n, first, second):
        token = ERC20TokenType(n, total_supply=10)
        state, _ = token.run(
            [
                (0, Operation("approve", (1, first))),
                (0, Operation("approve", (1, second))),
            ]
        )
        assert state.allowance(0, 1) == second

    @given(st.integers(2, MAX_ACCOUNTS), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_transfer_from_decrements_exactly(self, n, amount):
        token = ERC20TokenType(n, total_supply=amount)
        state, responses = token.run(
            [
                (0, Operation("approve", (1, amount))),
                (1, Operation("transferFrom", (0, 1, amount))),
            ]
        )
        assert responses == [True, True]
        assert state.allowance(0, 1) == 0
        assert state.balance(1) == amount
