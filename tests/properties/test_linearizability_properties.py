"""Property-based tests for the linearizability checker itself.

Soundness: any history produced by an actual sequential execution must be
accepted; any history produced by atomic-step concurrent execution of a
genuinely atomic object must be accepted; tampered responses must be
rejected.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.erc20 import ERC20Token, ERC20TokenType
from repro.objects.register import RegisterType
from repro.runtime.executor import System, run_system
from repro.runtime.scheduler import RandomScheduler
from repro.spec.history import History, sequential_history
from repro.spec.linearizability import check_linearizability
from repro.spec.operation import Operation


@st.composite
def register_programs(draw):
    """Per-process scripts of reads/writes."""
    num_processes = draw(st.integers(1, 3))
    scripts = []
    for _ in range(num_processes):
        steps = draw(
            st.lists(
                st.one_of(
                    st.just(("read", ())),
                    st.tuples(st.just("write"), st.tuples(st.integers(0, 5))),
                ),
                max_size=4,
            )
        )
        scripts.append(steps)
    return scripts


class TestSoundnessOnRealExecutions:
    @given(register_programs(), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_atomic_register_histories_always_linearizable(self, scripts, seed):
        from repro.objects.register import AtomicRegister

        register = AtomicRegister(name="r")

        def program_for(steps):
            def program():
                for name, args in steps:
                    yield register.call(Operation(name, tuple(args)))

            return program

        system = System(
            programs=[program_for(steps) for steps in scripts],
            objects=[register],
        )
        result = run_system(system, RandomScheduler(seed))
        outcome = check_linearizability(
            result.history.project("r"), RegisterType()
        )
        assert outcome.is_linearizable

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_atomic_token_histories_always_linearizable(self, seed):
        token = ERC20Token(3, total_supply=8, name="tok")

        def owner_program(pid):
            def program():
                yield token.transfer((pid + 1) % 3, 2)
                yield token.approve((pid + 2) % 3, 3)
                yield token.balance_of(pid)

            return program

        system = System(
            programs=[owner_program(pid) for pid in range(3)],
            objects=[token],
        )
        result = run_system(system, RandomScheduler(seed))
        outcome = check_linearizability(
            result.history.project("tok"), ERC20TokenType(3, total_supply=8)
        )
        assert outcome.is_linearizable

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_crashed_histories_still_linearizable(self, seed):
        token = ERC20Token(3, total_supply=8, name="tok")

        def program_for(pid):
            def program():
                yield token.transfer((pid + 1) % 3, 1)
                yield token.transfer((pid + 2) % 3, 1)

            return program

        system = System(
            programs=[program_for(pid) for pid in range(3)], objects=[token]
        )
        scheduler = RandomScheduler(
            seed, crash_probability=0.25, crash_budget=2
        )
        result = run_system(system, scheduler)
        outcome = check_linearizability(
            result.history.project("tok"), ERC20TokenType(3, total_supply=8)
        )
        assert outcome.is_linearizable


class TestRejection:
    @given(st.integers(0, 5), st.integers(6, 12))
    @settings(max_examples=40, deadline=None)
    def test_forged_response_rejected(self, real, forged):
        history = sequential_history(
            [
                (0, "r", Operation("write", (real,)), True),
                (1, "r", Operation("read", ()), forged),  # impossible value
            ]
        )
        outcome = check_linearizability(history, RegisterType())
        assert not outcome.is_linearizable

    def test_budget_exhaustion_reports_explored(self):
        # A big concurrent blob forces heavy search; the explored counter
        # must reflect the cap.
        history = History()
        for pid in range(6):
            history.invoke(pid, "r", Operation("write", (pid,)))
        for pid in range(6):
            history.respond(pid, "r", Operation("write", (pid,)), True)
        history.invoke(0, "r", Operation("read", ()))
        history.respond(0, "r", Operation("read", ()), 99)  # impossible
        outcome = check_linearizability(history, RegisterType(), max_states=50)
        assert not outcome.is_linearizable
        assert outcome.explored <= 51
