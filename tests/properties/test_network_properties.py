"""Property-based tests for the message-passing layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.dynamic_token import DynamicTokenNode, assert_converged
from repro.net.network import Network, UniformLatency
from repro.net.reliable_broadcast import ReliableBroadcastNode
from repro.net.simulation import Simulator
from repro.net.total_order import TotalOrderNode


class TestBRBProperties:
    @given(
        st.integers(0, 2**32 - 1),
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 99)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_validity_totality_fifo(self, seed, broadcasts):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
        nodes = [
            ReliableBroadcastNode(i, network, 4, fifo=True) for i in range(4)
        ]
        expected: dict[int, list[int]] = {i: [] for i in range(4)}
        for sender, value in broadcasts:
            nodes[sender].broadcast_value(value)
            expected[sender].append(value)
        simulator.run()
        for node in nodes:
            for sender in range(4):
                delivered = [d[2] for d in node.delivered if d[0] == sender]
                assert delivered == expected[sender]  # validity + FIFO

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_agreement_on_delivery_sets(self, seed):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.1, 3.0), seed=seed)
        nodes = [ReliableBroadcastNode(i, network, 7) for i in range(7)]
        for i in range(5):
            nodes[i].broadcast_value(f"m{i}")
        simulator.run()
        delivery_sets = [
            frozenset((d[0], d[1], d[2]) for d in node.delivered)
            for node in nodes
        ]
        assert len(set(delivery_sets)) == 1  # totality/agreement


class TestTotalOrderProperties:
    @given(
        st.integers(0, 2**32 - 1),
        st.lists(st.integers(0, 3), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_total_order(self, seed, submitters):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 1.5), seed=seed)
        nodes = [TotalOrderNode(i, network, 4) for i in range(4)]
        for index, submitter in enumerate(submitters):
            nodes[submitter].submit((submitter, index))
        simulator.run()
        orders = [
            [tx for _, batch in node.delivered for tx in batch]
            for node in nodes
        ]
        assert all(order == orders[0] for order in orders)
        assert sorted(orders[0]) == sorted(
            (submitter, index) for index, submitter in enumerate(submitters)
        )


class TestDynamicNetworkProperties:
    @given(
        st.integers(0, 2**32 - 1),
        st.lists(
            st.tuples(
                st.integers(0, 3),  # actor
                st.sampled_from(["transfer", "approve", "transferFrom"]),
                st.integers(0, 3),  # target / spender / source
                st.integers(0, 6),  # value
            ),
            max_size=25,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_convergence_and_conservation(self, seed, traffic):
        simulator = Simulator()
        network = Network(simulator, UniformLatency(0.5, 2.0), seed=seed)
        nodes = [DynamicTokenNode(i, network, 4, supply=60) for i in range(4)]
        # Fund everyone first so transferFroms have substance.
        for i in range(1, 4):
            nodes[0].submit_transfer(i, 10)
        simulator.run()
        for actor, kind, target, value in traffic:
            if kind == "transfer":
                nodes[actor].submit_transfer(target, value)
            elif kind == "approve":
                nodes[actor].submit_approve(target, value)
            else:
                nodes[actor].submit_transfer_from(
                    target, (target + 1) % 4, value
                )
        simulator.run()
        assert_converged(nodes)
        assert sum(nodes[0].state.balances) == 60
