"""Property-based tests for the Q_k partition and synchronization states."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.partition import (
    in_partition_cell,
    is_synchronization_state,
    make_synchronization_state,
    synchronization_level,
    unique_transfer,
    unique_transfer_strict,
)
from repro.analysis.reachability import escalation_plan
from repro.objects.erc20 import ERC20TokenType, TokenState


@st.composite
def token_states(draw):
    n = draw(st.integers(2, 5))
    balances = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    allowances = {}
    for _ in range(draw(st.integers(0, 8))):
        account = draw(st.integers(0, n - 1))
        spender = draw(st.integers(0, n - 1))
        allowances[(account, spender)] = draw(st.integers(0, 15))
    return TokenState.create(balances, allowances)


class TestPartitionLaws:
    @given(token_states())
    @settings(max_examples=200, deadline=None)
    def test_every_state_in_exactly_one_cell(self, state):
        n = state.num_accounts
        cells = [k for k in range(1, n + 1) if in_partition_cell(state, k)]
        assert len(cells) == 1
        assert cells[0] == synchronization_level(state)

    @given(token_states())
    @settings(max_examples=200, deadline=None)
    def test_strict_u_implies_literal_u(self, state):
        for account in range(state.num_accounts):
            if unique_transfer_strict(state, account):
                assert unique_transfer(state, account)

    @given(token_states())
    @settings(max_examples=200, deadline=None)
    def test_sk_strict_implies_sk_literal(self, state):
        for k in range(1, state.num_accounts + 1):
            if is_synchronization_state(state, k, strict=True):
                assert is_synchronization_state(state, k, strict=False)

    @given(token_states())
    @settings(max_examples=200, deadline=None)
    def test_sk_membership_is_within_qk_or_below(self, state):
        # A witness account with k spenders means max level >= k.
        for k in range(1, state.num_accounts + 1):
            if is_synchronization_state(state, k, strict=True):
                assert synchronization_level(state) >= k


class TestConstructions:
    @given(st.integers(2, 8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_make_synchronization_state_always_lands_in_sk(self, n, data):
        k = data.draw(st.integers(1, n))
        balance = data.draw(st.integers(k, 3 * k))
        state = make_synchronization_state(n, k, balance=balance)
        assert is_synchronization_state(state, k, strict=True)
        assert in_partition_cell(state, k)

    @given(st.integers(2, 6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_escalation_plan_reaches_sk(self, n, data):
        k = data.draw(st.integers(1, n))
        account = data.draw(st.integers(0, n - 1))
        token = ERC20TokenType(n, total_supply=k)
        plan = escalation_plan(n, k, account=account)
        state, responses = token.run(plan)
        assert all(responses)
        assert is_synchronization_state(state, k, strict=True)
