"""Property-based tests for the consensus protocols and the emulation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.restricted import restrict_to_potential_qk
from repro.protocols.kat_consensus import kat_consensus_system
from repro.protocols.token_consensus import algorithm1_system
from repro.protocols.token_from_kat import EmulatedToken, run_sequential
from repro.runtime.executor import run_system
from repro.runtime.scheduler import RandomScheduler
from repro.spec.operation import Operation

METHODS = {
    "transfer": "transfer",
    "transferFrom": "transfer_from",
    "approve": "approve",
    "balanceOf": "balance_of",
    "allowance": "allowance",
    "totalSupply": "total_supply",
}


@st.composite
def sk_configurations(draw):
    """A hypothesis-generated S_k configuration satisfying U*."""
    k = draw(st.integers(1, 5))
    n = draw(st.integers(k + 1, k + 3))
    balance = draw(st.integers(max(k, 2), 3 * k + 2))
    # Allowances in (balance/2, balance]: pairwise sums exceed the balance
    # and each is individually covered — U* by construction.
    low = balance // 2 + 1
    allowances = {
        (0, pid): draw(st.integers(low, balance)) for pid in range(1, k)
    }
    state = TokenState.create([balance] + [0] * (n - 1), allowances)
    return k, state


class TestAlgorithm1Properties:
    @given(sk_configurations(), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_agreement_validity_under_random_schedules(self, config, seed):
        k, state = config
        proposals = {pid: f"v{pid}" for pid in range(k)}
        system = algorithm1_system(proposals, state=state, strict=True)
        result = run_system(system, RandomScheduler(seed))
        values = set(result.decisions.values())
        assert len(values) == 1
        assert values <= set(proposals.values())

    @given(sk_configurations(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_wait_freedom_under_crashes(self, config, seed):
        k, state = config
        if k < 2:
            return
        proposals = {pid: pid for pid in range(k)}
        system = algorithm1_system(proposals, state=state, strict=True)
        scheduler = RandomScheduler(
            seed, crash_probability=0.15, crash_budget=k - 1
        )
        result = run_system(system, scheduler)
        correct = set(range(k)) - result.crashed
        assert set(result.decisions) == correct
        assert len(set(result.decisions.values())) <= 1


class TestKATProperties:
    @given(st.integers(1, 6), st.integers(1, 9), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_kat_consensus_correct(self, k, balance, seed):
        proposals = {pid: pid * 7 for pid in range(k)}
        system = kat_consensus_system(proposals, balance=balance)
        result = run_system(system, RandomScheduler(seed))
        values = set(result.decisions.values())
        assert len(values) == 1
        assert values <= set(proposals.values())


@st.composite
def emulation_workloads(draw):
    n = draw(st.integers(2, 4))
    k = draw(st.integers(1, n))
    supply = draw(st.integers(0, 15))
    steps = []
    for _ in range(draw(st.integers(0, 30))):
        pid = draw(st.integers(0, n - 1))
        name = draw(st.sampled_from(list(METHODS)))
        account = st.integers(0, n - 1)
        value = st.integers(0, 6)
        if name == "transfer":
            args = (draw(account), draw(value))
        elif name == "transferFrom":
            args = (draw(account), draw(account), draw(value))
        elif name == "approve":
            args = (draw(account), draw(value))
        elif name == "balanceOf":
            args = (draw(account),)
        elif name == "allowance":
            args = (draw(account), draw(account))
        else:
            args = ()
        steps.append((pid, name, args))
    return n, k, supply, steps


class TestEmulationProperties:
    @given(emulation_workloads())
    @settings(max_examples=80, deadline=None)
    def test_corrected_emulation_equals_restricted_spec(self, workload):
        n, k, supply, steps = workload
        spec = restrict_to_potential_qk(ERC20TokenType(n), k)
        spec_state = TokenState.deploy(n, supply)
        emulated = EmulatedToken(spec_state, k=k, variant="corrected")
        for pid, name, args in steps:
            spec_state, expected = spec.apply(
                spec_state, pid, Operation(name, args)
            )
            actual = run_sequential(emulated, pid, METHODS[name], *args)
            assert actual == expected

    @given(emulation_workloads())
    @settings(max_examples=60, deadline=None)
    def test_emulation_conserves_supply(self, workload):
        n, k, supply, steps = workload
        emulated = EmulatedToken(
            TokenState.deploy(n, supply), k=k, variant="corrected"
        )
        for pid, name, args in steps:
            run_sequential(emulated, pid, METHODS[name], *args)
        assert run_sequential(emulated, 0, "total_supply") == supply
