"""The U-predicate erratum (DESIGN.md, Reproduction note 1).

The paper's Eq. 13 predicate ``U`` does not require a spender's allowance to
be covered by the balance.  With balance 10 and a single spender allowance of
11, ``U`` holds (the ``|σ| ≤ 2`` branch) — yet the spender's ``transferFrom``
fails *even running solo*, no allowance is ever zeroed, and Algorithm 1 then
returns the owner's register, which was never written: a validity violation.

These tests exhibit the counterexample mechanically and verify the
strengthened predicate ``U*`` excludes exactly such states.
"""

from __future__ import annotations

import pytest

from repro.analysis.partition import (
    is_synchronization_state,
    unique_transfer,
    unique_transfer_strict,
)
from repro.objects.erc20 import TokenState
from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import algorithm1_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import SoloScheduler


def erratum_state() -> TokenState:
    """Balance 10, one spender with allowance 11 — literal U holds, U* not."""
    return TokenState.create([10, 0], {(0, 1): 11})


class TestPredicateGap:
    def test_literal_u_accepts(self):
        assert unique_transfer(erratum_state(), 0)

    def test_strict_u_rejects(self):
        assert not unique_transfer_strict(erratum_state(), 0)

    def test_sk_membership_differs(self):
        state = erratum_state()
        assert is_synchronization_state(state, 2, strict=False)
        assert not is_synchronization_state(state, 2, strict=True)


class TestCounterexample:
    def test_solo_spender_violates_validity(self):
        proposals = {0: "owner-value", 1: "spender-value"}
        system = algorithm1_system(
            proposals, state=erratum_state(), strict=False
        )
        result = run_system(system, SoloScheduler([1, 0]))
        # The spender's transferFrom fails (11 > 10); it scans allowances,
        # finds none zero, and reads the owner's register — still ⊥.
        assert result.decisions[1] is None  # decided a non-proposal!
        assert result.decisions[1] not in proposals.values()

    def test_exhaustive_exploration_finds_violations(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: algorithm1_system(
            proposals, state=erratum_state(), strict=False
        )
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert not report.ok
        messages = " ".join(str(v) for v in report.violations)
        assert "validity" in messages

    def test_three_spender_variant(self):
        # Pairwise-sum branch satisfied (11 + 11 > 10) yet allowances exceed
        # the balance: same failure with |σ| = 3.
        state = TokenState.create([10, 0, 0], {(0, 1): 11, (0, 2): 11})
        assert unique_transfer(state, 0)
        assert not unique_transfer_strict(state, 0)
        proposals = {0: "a", 1: "b", 2: "c"}
        factory = lambda: algorithm1_system(
            proposals, state=state, strict=False
        )
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert not report.ok


class TestStrengthenedPredicateRepairs:
    def test_strict_construction_rejects_bad_state(self):
        from repro.errors import InvalidArgumentError

        with pytest.raises(InvalidArgumentError):
            algorithm1_system(
                {0: "a", 1: "b"}, state=erratum_state(), strict=True
            )

    def test_comparable_strict_state_is_correct(self):
        # Same shape with allowance capped at the balance: exhaustively OK.
        state = TokenState.create([10, 0], {(0, 1): 10})
        proposals = {0: "a", 1: "b"}
        factory = lambda: algorithm1_system(proposals, state=state, strict=True)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok
        assert report.outcomes == {"a", "b"}
