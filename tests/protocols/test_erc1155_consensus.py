"""Tests for the ERC1155 consensus race (§6's open conjecture, lower bound)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc1155 import ERC1155Token
from repro.protocols.base import consensus_checks
from repro.protocols.erc1155_consensus import (
    ERC1155Consensus,
    erc1155_consensus_system,
)
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


class TestConstruction:
    def test_operators_become_participants(self):
        token = ERC1155Token([[5, 0], [0, 0], [0, 0], [0, 0]])
        token.invoke(0, token.set_approval_for_all(1, True).operation)
        token.invoke(0, token.set_approval_for_all(2, True).operation)
        protocol = ERC1155Consensus(token, holder=0, token_type=0, sink=3)
        assert protocol.participants == (0, 1, 2)
        assert protocol.balance == 5

    def test_holder_needs_balance(self):
        token = ERC1155Token([[0], [0], [0]])
        with pytest.raises(InvalidArgumentError):
            ERC1155Consensus(token, holder=0, token_type=0, sink=2)

    def test_targets_must_start_empty(self):
        token = ERC1155Token([[5], [1], [0]])
        token.invoke(0, token.set_approval_for_all(1, True).operation)
        with pytest.raises(InvalidArgumentError):
            ERC1155Consensus(token, holder=0, token_type=0, sink=2)


class TestRuns:
    def test_solo_runs(self):
        for first in (0, 1):
            system = erc1155_consensus_system({0: "a", 1: "b"})
            result = run_system(system, SoloScheduler([first, 1 - first]))
            expected = "a" if first == 0 else "b"
            assert set(result.decisions.values()) == {expected}

    @pytest.mark.parametrize("k", [2, 3])
    def test_exhaustive(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: erc1155_consensus_system(proposals)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok, report.violations[:3]
        assert report.outcomes == set(proposals.values())

    def test_exhaustive_with_crash(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: erc1155_consensus_system(proposals)
        report = ScheduleExplorer(factory, crash_budget=1).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok

    @pytest.mark.parametrize("k", [4, 6])
    def test_randomized(self, k):
        proposals = {pid: pid for pid in range(k)}
        for seed in range(10):
            result = run_system(
                erc1155_consensus_system(proposals), RandomScheduler(seed)
            )
            assert len(set(result.decisions.values())) == 1

    def test_other_token_types_untouched(self):
        system = erc1155_consensus_system({0: "a", 1: "b"}, num_token_types=3)
        result = run_system(system, SoloScheduler([1, 0]))
        token = system.objects[0]
        # Types 1 and 2 never moved.
        for account in range(3):
            for token_type in (1, 2):
                assert (
                    token.invoke(
                        0, token.balance_of(account, token_type).operation
                    )
                    == 0
                )


class TestBatchTwist:
    def test_batch_race_settles_multiple_types_atomically(self):
        # Two operators race a BATCH spanning two token types: the winner
        # takes both types in one atomic step — a combination single-type
        # standards cannot express, supporting §6's "needs its own analysis".
        token = ERC1155Token([[3, 7], [0, 0], [0, 0], [0, 0]])
        token.invoke(0, token.set_approval_for_all(1, True).operation)
        token.invoke(0, token.set_approval_for_all(2, True).operation)
        first = token.invoke(
            1,
            token.safe_batch_transfer_from(0, 1, [0, 1], [3, 7]).operation,
        )
        second = token.invoke(
            2,
            token.safe_batch_transfer_from(0, 2, [0, 1], [3, 7]).operation,
        )
        assert first is True
        assert second is False  # all-or-nothing: the loser gets neither type
        assert token.invoke(0, token.balance_of(1, 0).operation) == 3
        assert token.invoke(0, token.balance_of(1, 1).operation) == 7

    def test_partial_batches_can_interleave(self):
        # If the racers target DISJOINT type subsets, both succeed — the
        # conflict structure depends on the batch contents, which is exactly
        # why the paper defers the full ERC1155 analysis.
        token = ERC1155Token([[3, 7], [0, 0], [0, 0]])
        token.invoke(0, token.set_approval_for_all(1, True).operation)
        token.invoke(0, token.set_approval_for_all(2, True).operation)
        first = token.invoke(
            1, token.safe_batch_transfer_from(0, 1, [0], [3]).operation
        )
        second = token.invoke(
            2, token.safe_batch_transfer_from(0, 2, [1], [7]).operation
        )
        assert first is True and second is True
