"""Tests for the §6 ERC721 consensus race."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc721 import ERC721Token
from repro.protocols.base import consensus_checks
from repro.protocols.erc721_consensus import (
    ERC721Consensus,
    erc721_consensus_system,
)
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


class TestConstruction:
    def test_participants_derived_from_operators(self):
        nft = ERC721Token(4, initial_owners=[0])
        nft.invoke(0, nft.set_approval_for_all(1, True).operation)
        nft.invoke(0, nft.set_approval_for_all(2, True).operation)
        protocol = ERC721Consensus(nft, token_id=0, sink=3)
        assert protocol.participants == (0, 1, 2)
        assert protocol.k == 3
        assert protocol.targets[0] == 3  # the owner targets the sink

    def test_sink_must_not_participate(self):
        nft = ERC721Token(3, initial_owners=[0])
        nft.invoke(0, nft.set_approval_for_all(1, True).operation)
        with pytest.raises(InvalidArgumentError):
            ERC721Consensus(nft, token_id=0, sink=1)

    def test_sink_must_have_no_operators(self):
        nft = ERC721Token(4, initial_owners=[0])
        nft.invoke(0, nft.set_approval_for_all(1, True).operation)
        nft.invoke(3, nft.set_approval_for_all(2, True).operation)
        with pytest.raises(InvalidArgumentError):
            ERC721Consensus(nft, token_id=0, sink=3)


class TestRuns:
    def test_solo_owner_wins(self):
        system = erc721_consensus_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([0, 1]))
        assert set(result.decisions.values()) == {"a"}

    def test_solo_operator_wins(self):
        system = erc721_consensus_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([1, 0]))
        assert set(result.decisions.values()) == {"b"}

    def test_k1(self):
        result = run_system(erc721_consensus_system({0: "only"}))
        assert result.decisions == {0: "only"}

    @pytest.mark.parametrize("k", [2, 3])
    def test_exhaustive(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: erc721_consensus_system(proposals)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok, report.violations[:3]
        assert report.outcomes == set(proposals.values())

    def test_exhaustive_with_crash(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: erc721_consensus_system(proposals)
        report = ScheduleExplorer(factory, crash_budget=1).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok

    @pytest.mark.parametrize("k", [4, 6])
    def test_randomized(self, k):
        proposals = {pid: pid for pid in range(k)}
        for seed in range(10):
            result = run_system(
                erc721_consensus_system(proposals), RandomScheduler(seed)
            )
            assert len(set(result.decisions.values())) == 1

    def test_token_ends_with_winner_target(self):
        system = erc721_consensus_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([1, 0]))
        nft = system.objects[0]
        # p1 won: the NFT sits in p1's account.
        assert nft.invoke(0, nft.owner_of(0).operation) == 1
