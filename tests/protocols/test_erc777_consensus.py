"""Tests for the §6 ERC777 operator-race consensus."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc777 import ERC777Token
from repro.protocols.base import consensus_checks
from repro.protocols.erc777_consensus import (
    ERC777Consensus,
    erc777_consensus_system,
)
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


class TestConstruction:
    def test_operators_become_participants(self):
        token = ERC777Token([5, 0, 0, 0])
        token.invoke(0, token.authorize_operator(1).operation)
        token.invoke(0, token.authorize_operator(2).operation)
        protocol = ERC777Consensus(token, holder=0, sink=3)
        assert protocol.participants == (0, 1, 2)
        assert protocol.balance == 5

    def test_holder_needs_balance(self):
        token = ERC777Token([0, 0, 0])
        with pytest.raises(InvalidArgumentError):
            ERC777Consensus(token, holder=0, sink=2)

    def test_targets_must_start_empty(self):
        token = ERC777Token([5, 1, 0])
        token.invoke(0, token.authorize_operator(1).operation)
        with pytest.raises(InvalidArgumentError):
            ERC777Consensus(token, holder=0, sink=2)

    def test_sink_must_not_participate(self):
        token = ERC777Token([5, 0, 0])
        token.invoke(0, token.authorize_operator(1).operation)
        with pytest.raises(InvalidArgumentError):
            ERC777Consensus(token, holder=0, sink=1)


class TestRuns:
    def test_solo_holder_wins(self):
        system = erc777_consensus_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([0, 1]))
        assert set(result.decisions.values()) == {"a"}

    def test_solo_operator_wins(self):
        system = erc777_consensus_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([1, 0]))
        assert set(result.decisions.values()) == {"b"}

    @pytest.mark.parametrize("k", [2, 3])
    def test_exhaustive(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: erc777_consensus_system(proposals)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok, report.violations[:3]
        assert report.outcomes == set(proposals.values())

    def test_exhaustive_with_crash(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: erc777_consensus_system(proposals)
        report = ScheduleExplorer(factory, crash_budget=1).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok

    @pytest.mark.parametrize("k", [4, 6])
    def test_randomized(self, k):
        proposals = {pid: pid for pid in range(k)}
        for seed in range(10):
            result = run_system(
                erc777_consensus_system(proposals), RandomScheduler(seed)
            )
            assert len(set(result.decisions.values())) == 1

    def test_no_bounded_allowance_needed(self):
        # The §6 observation: operators satisfy U automatically (they spend
        # the whole balance), so any positive balance works.
        for balance in (1, 7, 100):
            proposals = {0: "x", 1: "y", 2: "z"}
            factory = lambda b=balance: erc777_consensus_system(
                proposals, balance=b
            )
            report = ScheduleExplorer(factory).explore(
                checks=[consensus_checks(proposals)]
            )
            assert report.ok
