"""Tests for the escrow-allowance token and its synchronization collapse."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import TokenState
from repro.objects.register import register_array
from repro.protocols.escrow_token import EscrowToken, escrow_from_deploy
from repro.protocols.token_from_kat import run_sequential
from repro.runtime.executor import System
from repro.runtime.explorer import ScheduleExplorer


class TestSequentialBehaviour:
    def test_deploy_and_transfer(self):
        token = escrow_from_deploy(3, 10)
        assert run_sequential(token, 0, "transfer", 1, 4) is True
        assert run_sequential(token, 0, "free_balance_of", 0) == 6
        assert run_sequential(token, 0, "free_balance_of", 1) == 4

    def test_allowance_lifecycle(self):
        token = escrow_from_deploy(3, 10)
        assert run_sequential(token, 0, "increase_allowance", 2, 6) is True
        assert run_sequential(token, 0, "allowance", 0, 2) == 6
        # The escrowed amount left the free balance immediately.
        assert run_sequential(token, 0, "free_balance_of", 0) == 4
        # ERC20-style total balance still counts the escrow.
        assert run_sequential(token, 0, "balance_of", 0) == 10
        assert run_sequential(token, 2, "transfer_from", 0, 1, 4) is True
        assert run_sequential(token, 0, "allowance", 0, 2) == 2
        assert run_sequential(token, 0, "free_balance_of", 1) == 4
        assert run_sequential(token, 0, "decrease_allowance", 2, 2) is True
        assert run_sequential(token, 0, "allowance", 0, 2) == 0

    def test_transfer_from_bounded_by_escrow(self):
        token = escrow_from_deploy(3, 10)
        run_sequential(token, 0, "increase_allowance", 1, 3)
        assert run_sequential(token, 1, "transfer_from", 0, 1, 5) is False
        assert run_sequential(token, 1, "transfer_from", 0, 1, 3) is True

    def test_unauthorized_spender_fails(self):
        token = escrow_from_deploy(3, 10)
        run_sequential(token, 0, "increase_allowance", 1, 3)
        # p2 does not co-own the (0,1) escrow.
        assert run_sequential(token, 2, "transfer_from", 0, 2, 1) is False

    def test_escrow_not_spendable_by_owner_transfer(self):
        # The trade-off: escrowed funds leave the owner's direct reach.
        token = escrow_from_deploy(2, 10)
        run_sequential(token, 0, "increase_allowance", 1, 8)
        assert run_sequential(token, 0, "transfer", 1, 5) is False  # free = 2
        assert run_sequential(token, 0, "decrease_allowance", 1, 8) is True
        assert run_sequential(token, 0, "transfer", 1, 5) is True

    def test_supply_counts_escrows(self):
        token = escrow_from_deploy(3, 12)
        run_sequential(token, 0, "increase_allowance", 1, 5)
        assert run_sequential(token, 0, "total_supply") == 12

    def test_initial_allowances_become_escrows(self):
        state = TokenState.create([5, 0], {(0, 1): 4})
        token = EscrowToken(state)
        assert run_sequential(token, 0, "allowance", 0, 1) == 4
        assert run_sequential(token, 1, "transfer_from", 0, 1, 4) is True

    def test_validation(self):
        token = escrow_from_deploy(2, 5)
        with pytest.raises(InvalidArgumentError):
            token.escrow(0, 9)
        with pytest.raises(InvalidArgumentError):
            token.free(5)


class TestAtomicity:
    def test_every_mutation_is_one_base_step(self):
        token = escrow_from_deploy(4, 10)
        for method, args in [
            ("transfer", (1, 2)),
            ("increase_allowance", (1, 2)),
            ("decrease_allowance", (1, 1)),
            ("allowance", (0, 1)),
            ("free_balance_of", (0,)),
            ("total_supply", ()),
        ]:
            generator = getattr(token, method)(0, *args)
            steps = 0
            try:
                call = next(generator)
                while True:
                    steps += 1
                    result = call.target.invoke(0, call.operation)
                    call = generator.send(result)
            except StopIteration:
                pass
            assert steps == 1, f"{method} must be a single atomic step"

    def test_transfer_from_single_step(self):
        token = escrow_from_deploy(3, 10)
        run_sequential(token, 0, "increase_allowance", 1, 5)
        generator = token.transfer_from(1, 0, 2, 3)
        call = next(generator)
        with pytest.raises(StopIteration):
            generator.send(call.target.invoke(1, call.operation))


class TestSynchronizationCollapse:
    """The punchline: escrowing removes the k-way race ERC20 offers."""

    def test_all_spenders_win_independently(self):
        # On ERC20 with U*, at most one of these transfers succeeds; on the
        # escrow token, EVERY spender's transferFrom succeeds — no race.
        token = escrow_from_deploy(4, 9)
        for spender in (1, 2, 3):
            run_sequential(token, 0, "increase_allowance", spender, 3)
        results = [
            run_sequential(token, spender, "transfer_from", 0, spender, 3)
            for spender in (1, 2, 3)
        ]
        assert results == [True, True, True]

    def test_algorithm1_style_race_has_no_unique_winner(self):
        # Run the Algorithm 1 decision pattern over the escrow token: the
        # explorer finds schedules where multiple "winners" see their own
        # allowance at zero, i.e. no consensus — mechanical evidence the
        # escrow token cannot support the k-way construction.
        def factory() -> System:
            token = EscrowToken(
                TokenState.create([0, 0, 0], {(0, 1): 3, (0, 2): 3})
            )
            registers = register_array(3)
            proposals = {1: "b", 2: "c"}

            def propose(pid: int):
                def program():
                    yield registers[pid].write(proposals[pid])
                    yield from token.transfer_from(pid, 0, pid, 3)
                    for j in (1, 2):
                        allowance = yield from token.allowance(pid, 0, j)
                        if allowance == 0:
                            decision = yield registers[j].read()
                            return decision
                    decision = yield registers[0].read()
                    return decision

                return program

            return System(
                programs=[propose(1), propose(2)],
                objects=token.base_objects + registers,
                pids=[1, 2],
            )

        from repro.protocols.base import consensus_checks

        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks({1: "b", 2: "c"})]
        )
        assert not report.ok, (
            "escrowed allowances must break the unique-winner race"
        )
        assert any("agreement" in str(v) for v in report.violations)

    def test_pairwise_owner_spender_race_still_works(self):
        # The escrow sub-account is 2-shared: owner vs ONE spender can still
        # race (consensus number 2 survives), via decrease_allowance against
        # transfer_from on the same escrow.
        def factory() -> System:
            token = EscrowToken(TokenState.create([0, 0], {(0, 1): 2}))
            registers = register_array(2)
            proposals = {0: "owner", 1: "spender"}

            def propose(pid: int):
                def program():
                    yield registers[pid].write(proposals[pid])
                    if pid == 0:
                        yield from token.decrease_allowance(0, 1, 2)
                    else:
                        yield from token.transfer_from(1, 0, 1, 2)
                    # Winner detection: where did the 2 tokens land?
                    free_spender = yield from token.free_balance_of(pid, 1)
                    if free_spender >= 2:
                        decision = yield registers[1].read()
                        return decision
                    decision = yield registers[0].read()
                    return decision

                return program

            return System(
                programs=[propose(0), propose(1)],
                objects=token.base_objects + registers,
                pids=[0, 1],
            )

        from repro.protocols.base import consensus_checks

        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks({0: "owner", 1: "spender"})]
        )
        assert report.ok, report.violations[:2]
        assert report.outcomes == {"owner", "spender"}
