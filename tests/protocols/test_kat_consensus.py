"""Tests for consensus from k-shared asset transfer (CN(k-AT) = k, [16])."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.asset_transfer import AssetTransfer
from repro.protocols.base import consensus_checks
from repro.protocols.kat_consensus import KATConsensus, kat_consensus_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import RandomScheduler, SoloScheduler


class TestConstruction:
    def test_sinks_must_cover_owners(self):
        kat = AssetTransfer(
            [2, 0, 0], owner_map=[{0, 1}, {1}, {2}], num_processes=3
        )
        with pytest.raises(InvalidArgumentError):
            KATConsensus(kat, shared_account=0, sinks={0: 1})

    def test_sinks_must_be_distinct(self):
        kat = AssetTransfer(
            [2, 0, 0], owner_map=[{0, 1}, {1}, {2}], num_processes=3
        )
        with pytest.raises(InvalidArgumentError):
            KATConsensus(kat, shared_account=0, sinks={0: 1, 1: 1})

    def test_shared_account_needs_balance(self):
        kat = AssetTransfer(
            [0, 0, 0], owner_map=[{0, 1}, {1}, {2}], num_processes=3
        )
        with pytest.raises(InvalidArgumentError):
            KATConsensus(kat, shared_account=0, sinks={0: 1, 1: 2})

    def test_sink_must_start_empty(self):
        kat = AssetTransfer(
            [2, 1, 0], owner_map=[{0, 1}, {1}, {2}], num_processes=3
        )
        with pytest.raises(InvalidArgumentError):
            KATConsensus(kat, shared_account=0, sinks={0: 1, 1: 2})


class TestRuns:
    def test_solo_runs_decide_the_runner(self):
        for first in (0, 1):
            system = kat_consensus_system({0: "a", 1: "b"})
            result = run_system(system, SoloScheduler([first, 1 - first]))
            expected = "a" if first == 0 else "b"
            assert set(result.decisions.values()) == {expected}

    def test_k1(self):
        result = run_system(kat_consensus_system({0: "only"}))
        assert result.decisions == {0: "only"}

    @pytest.mark.parametrize("k", [2, 3])
    def test_exhaustive(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: kat_consensus_system(proposals)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok, report.violations[:3]
        assert report.outcomes == set(proposals.values())

    def test_exhaustive_with_crashes(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: kat_consensus_system(proposals)
        report = ScheduleExplorer(factory, crash_budget=1).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_randomized_large_k(self, k):
        proposals = {pid: pid * 10 for pid in range(k)}
        for seed in range(10):
            result = run_system(
                kat_consensus_system(proposals), RandomScheduler(seed)
            )
            values = set(result.decisions.values())
            assert len(values) == 1
            assert values <= set(proposals.values())

    def test_larger_balance(self):
        proposals = {0: "a", 1: "b"}
        factory = lambda: kat_consensus_system(proposals, balance=17)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok


class TestSeparationFromERC20:
    def test_owner_map_is_static(self):
        # The k-AT object offers no operation to change µ: the contrast with
        # ERC20's dynamic approve that §5.2 emphasizes.
        kat = AssetTransfer([1, 0], owner_map=[{0}, {1}])
        assert "approve" not in kat.object_type.operation_names()
        assert "setOwners" not in kat.object_type.operation_names()
