"""Tests for the doomed register-only consensus protocol (FLP demo)."""

from __future__ import annotations

from repro.protocols.base import consensus_checks
from repro.protocols.register_consensus import doomed_register_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import FixedScheduler, SoloScheduler


class TestWhereItWorks:
    def test_first_solo_runner_decides_its_own_value(self):
        # Even sequential composition breaks this protocol (the early
        # decider cannot be corrected later) — but the first runner itself
        # behaves sensibly, which is all a doomed protocol can offer.
        result = run_system(
            doomed_register_system({0: 2, 1: 1}), SoloScheduler([0, 1])
        )
        assert result.decisions[0] == 2

    def test_lockstep_agrees(self):
        # Fully synchronous interleaving: both see both, both take min.
        result = run_system(
            doomed_register_system({0: 2, 1: 1}),
            FixedScheduler([0, 1, 0, 1]),
        )
        assert result.decisions == {0: 1, 1: 1}


class TestWhereItFails:
    def test_half_overlap_disagrees(self):
        # p0 writes and reads (sees ⊥, decides own 2); p1 then sees p0 and
        # takes min = 1: disagreement.
        result = run_system(
            doomed_register_system({0: 2, 1: 1}),
            FixedScheduler([0, 0, 1, 1]),
        )
        assert result.decisions == {0: 2, 1: 1}
        assert len(set(result.decisions.values())) == 2

    def test_explorer_finds_the_violation(self):
        proposals = {0: 2, 1: 1}
        report = ScheduleExplorer(
            lambda: doomed_register_system(proposals)
        ).explore(checks=[consensus_checks(proposals)])
        assert not report.ok
        assert any("agreement" in str(v) for v in report.violations)

    def test_no_violation_with_equal_proposals(self):
        # Agreement is vacuous when both propose the same value — the
        # adversary needs distinct proposals (bivalence).
        proposals = {0: 5, 1: 5}
        report = ScheduleExplorer(
            lambda: doomed_register_system(proposals)
        ).explore(checks=[consensus_checks(proposals)])
        assert report.ok
