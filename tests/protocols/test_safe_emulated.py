"""Tests for the single-writer SafeEmulatedToken (Reproduction note 2's fix)."""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.restricted import restrict_to_potential_qk
from repro.protocols.token_from_kat import (
    SafeEmulatedToken,
    run_sequential,
    workload_program,
)
from repro.runtime.executor import System
from repro.runtime.explorer import ScheduleExplorer
from repro.spec.history import History
from repro.spec.linearizability import check_linearizability

METHODS = {
    "transfer": "transfer",
    "transferFrom": "transfer_from",
    "increaseAllowance": "increase_allowance",
    "decreaseAllowance": "decrease_allowance",
    "balanceOf": "balance_of",
    "allowance": "allowance",
    "totalSupply": "total_supply",
}


class TestSequentialBehaviour:
    def test_increase_then_spend(self):
        emulated = SafeEmulatedToken(TokenState.deploy(3, 10), k=2)
        assert run_sequential(emulated, 0, "increase_allowance", 1, 6) is True
        assert run_sequential(emulated, 1, "transfer_from", 0, 2, 4) is True
        assert run_sequential(emulated, 0, "allowance", 0, 1) == 2
        assert run_sequential(emulated, 0, "balance_of", 2) == 4

    def test_decrease_allowance(self):
        emulated = SafeEmulatedToken(TokenState.deploy(2, 5), k=2)
        run_sequential(emulated, 0, "increase_allowance", 1, 5)
        assert run_sequential(emulated, 0, "decrease_allowance", 1, 3) is True
        assert run_sequential(emulated, 0, "allowance", 0, 1) == 2
        assert run_sequential(emulated, 0, "decrease_allowance", 1, 5) is False

    def test_qk_guard(self):
        emulated = SafeEmulatedToken(TokenState.deploy(4, 10), k=2)
        assert run_sequential(emulated, 0, "increase_allowance", 1, 2) is True
        assert run_sequential(emulated, 0, "increase_allowance", 2, 2) is False

    def test_failed_inner_transfer_restores_reservation(self):
        # Allowance 5, balance 3: the reservation must be rolled back.
        state = TokenState.create([0, 3, 0], {(1, 2): 5})
        emulated = SafeEmulatedToken(state, k=2)
        assert run_sequential(emulated, 2, "transfer_from", 1, 2, 5) is False
        assert run_sequential(emulated, 2, "allowance", 1, 2) == 5

    def test_rejects_states_beyond_k(self):
        state = TokenState.create([5, 0, 0], {(0, 1): 1, (0, 2): 1})
        with pytest.raises(InvalidArgumentError):
            SafeEmulatedToken(state, k=2)

    @pytest.mark.parametrize("seed", range(4))
    def test_differential_vs_extension_spec(self, seed):
        rng = random.Random(seed)
        n, k = 3, 2
        spec = restrict_to_potential_qk(
            ERC20TokenType(n, with_extensions=True), k
        )
        spec_state = TokenState.deploy(n, 10)
        emulated = SafeEmulatedToken(spec_state, k=k)
        from repro.spec.operation import Operation

        for _ in range(200):
            pid = rng.randrange(n)
            name = rng.choice(list(METHODS))
            if name == "transfer":
                args = (rng.randrange(n), rng.randint(0, 4))
            elif name == "transferFrom":
                args = (rng.randrange(n), rng.randrange(n), rng.randint(0, 4))
            elif name in ("increaseAllowance", "decreaseAllowance"):
                args = (rng.randrange(n), rng.randint(0, 4))
            elif name == "balanceOf":
                args = (rng.randrange(n),)
            elif name == "allowance":
                args = (rng.randrange(n), rng.randrange(n))
            else:
                args = ()
            spec_state, expected = spec.apply(
                spec_state, pid, Operation(name, args)
            )
            actual = run_sequential(emulated, pid, METHODS[name], *args)
            assert actual == expected, f"{name}{args} by p{pid}"


class TestConcurrentLinearizability:
    @staticmethod
    def _factory(initial: TokenState, k: int, steps_by_pid: dict):
        def build() -> System:
            history = History()
            emulated = SafeEmulatedToken(initial, k=k, history=history)
            pids = sorted(steps_by_pid)
            programs = [
                (lambda p=pid: workload_program(emulated, p, steps_by_pid[p]))
                for pid in pids
            ]
            return System(
                programs=programs,
                objects=emulated.base_objects,
                meta={"history": history, "emulated": emulated},
                pids=pids,
            )

        return build

    def test_allowance_race_now_linearizable(self):
        # The exact scenario that breaks the paper's Algorithm 2 (multi-writer
        # allowance cell) is linearizable with single-writer counters.
        initial = TokenState.create([10, 0], {(0, 1): 5})
        spec = restrict_to_potential_qk(
            ERC20TokenType(2, with_extensions=True), 2
        )
        steps = {
            0: [("increase_allowance", (1, 10)), ("allowance", (0, 1))],
            1: [("transfer_from", (0, 1, 5))],
        }

        def check(runners, system, schedule):
            history = system.meta["history"]
            result = check_linearizability(
                history.project(system.meta["emulated"].name),
                spec,
                initial_state=initial,
            )
            if not result.is_linearizable:
                return ["non-linearizable: " + "; ".join(map(str, history))]
            return []

        report = ScheduleExplorer(self._factory(initial, 2, steps)).explore(
            checks=[check]
        )
        assert report.ok, report.violations[:1]

    def test_spender_race_linearizable(self):
        initial = TokenState.create([5, 0, 0], {(0, 1): 5, (0, 2): 5})
        spec = restrict_to_potential_qk(
            ERC20TokenType(3, with_extensions=True), 3
        )
        steps = {
            1: [("transfer_from", (0, 1, 5))],
            2: [("transfer_from", (0, 2, 5))],
        }

        def check(runners, system, schedule):
            history = system.meta["history"]
            result = check_linearizability(
                history.project(system.meta["emulated"].name),
                spec,
                initial_state=initial,
            )
            if not result.is_linearizable:
                return ["non-linearizable"]
            return []

        report = ScheduleExplorer(self._factory(initial, 3, steps)).explore(
            checks=[check]
        )
        assert report.ok, report.violations[:1]
