"""Tests for Algorithm 1 (Theorem 2): consensus from ERC20 tokens.

The exhaustive tests mechanically verify the theorem's claim for small ``k``:
*every* interleaving (and every crash pattern within the budget) satisfies
agreement, validity, and termination.  Randomized sweeps extend coverage to
larger ``k``.
"""

from __future__ import annotations

import pytest

from repro.analysis.partition import make_synchronization_state
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20Token, TokenState
from repro.protocols.base import consensus_checks
from repro.protocols.token_consensus import TokenConsensus, algorithm1_system
from repro.runtime.executor import run_system
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.scheduler import (
    FixedScheduler,
    RandomScheduler,
    SoloScheduler,
)


class TestConstruction:
    def test_configuration_from_state(self):
        state = make_synchronization_state(4, 3)
        token = ERC20Token(4, initial_state=state)
        protocol = TokenConsensus(token)
        assert protocol.k == 3
        assert protocol.participants == (0, 1, 2)
        assert protocol.balance == 3
        assert protocol.dest != protocol.account

    def test_rejects_non_synchronization_state(self):
        token = ERC20Token(3, total_supply=10)
        token.invoke(0, token.approve(1, 20).operation)  # allowance > balance
        with pytest.raises(InvalidArgumentError):
            TokenConsensus(token, account=0)

    def test_literal_mode_accepts_erratum_state(self):
        state = TokenState.create([10, 0], {(0, 1): 11})
        token = ERC20Token(2, initial_state=state)
        protocol = TokenConsensus(token, account=0, strict=False)
        assert protocol.k == 2

    def test_register_count_checked(self):
        from repro.objects.register import register_array

        state = make_synchronization_state(3, 2)
        token = ERC20Token(3, initial_state=state)
        with pytest.raises(InvalidArgumentError):
            TokenConsensus(token, account=0, registers=register_array(5))

    def test_non_participant_rejected(self):
        state = make_synchronization_state(4, 2)
        token = ERC20Token(4, initial_state=state)
        protocol = TokenConsensus(token, account=0)
        with pytest.raises(InvalidArgumentError):
            protocol.index_of(3)


class TestSequentialRuns:
    def test_solo_owner_decides_own_value(self):
        system = algorithm1_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([0, 1]))
        assert result.decisions == {0: "a", 1: "a"}

    def test_solo_spender_decides_own_value(self):
        system = algorithm1_system({0: "a", 1: "b"})
        result = run_system(system, SoloScheduler([1, 0]))
        assert result.decisions == {0: "b", 1: "b"}

    def test_k1_trivial(self):
        system = algorithm1_system({0: "only"})
        result = run_system(system)
        assert result.decisions == {0: "only"}

    def test_interleaved_race(self):
        # Both write registers, then both attempt their transfer: the
        # scheduled order of the transfer steps decides.
        system = algorithm1_system({0: "a", 1: "b"})
        # Steps: p0.write, p1.write, p1.transferFrom (wins), p0.transfer ...
        result = run_system(system, FixedScheduler([0, 1, 1, 0, 0, 0, 1, 1]))
        assert set(result.decisions.values()) == {"b"}


@pytest.mark.parametrize("k", [2, 3])
class TestExhaustive:
    def test_every_schedule_correct(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: algorithm1_system(proposals)
        explorer = ScheduleExplorer(factory)
        report = explorer.explore(checks=[consensus_checks(proposals)])
        assert report.ok, report.violations[:3]
        # Every participant's value is reachable: the race is genuinely open.
        assert report.outcomes == set(proposals.values())

    def test_wait_freedom_under_crashes(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        factory = lambda: algorithm1_system(proposals)
        explorer = ScheduleExplorer(factory, crash_budget=k - 1)
        report = explorer.explore(checks=[consensus_checks(proposals)])
        assert report.ok, report.violations[:3]


class TestRandomizedSweeps:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_agreement_validity_across_seeds(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        for seed in range(20):
            system = algorithm1_system(proposals)
            result = run_system(system, RandomScheduler(seed))
            values = set(result.decisions.values())
            assert len(values) == 1, f"seed {seed}: {result.decisions}"
            assert values <= set(proposals.values())

    @pytest.mark.parametrize("k", [3, 5])
    def test_with_random_crashes(self, k):
        proposals = {pid: f"v{pid}" for pid in range(k)}
        for seed in range(20):
            system = algorithm1_system(proposals)
            scheduler = RandomScheduler(
                seed, crash_probability=0.1, crash_budget=k - 1
            )
            result = run_system(system, scheduler)
            values = set(result.decisions.values())
            assert len(values) <= 1
            correct = set(range(k)) - result.crashed
            assert set(result.decisions) == correct


class TestNonCanonicalStates:
    def test_unequal_allowances(self):
        # U* with distinct allowances: B=10, A=(7, 8); pairwise 7+8 > 10.
        state = TokenState.create([10, 0, 0], {(0, 1): 7, (0, 2): 8})
        proposals = {0: "x", 1: "y", 2: "z"}
        factory = lambda: algorithm1_system(proposals, state=state)
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok
        assert report.outcomes == {"x", "y", "z"}

    def test_witness_account_not_zero(self):
        state = make_synchronization_state(4, 2, account=2)
        proposals = {2: "owner", 0: "spender"}
        factory = lambda: algorithm1_system(
            proposals, state=state, account=2
        )
        report = ScheduleExplorer(factory).explore(
            checks=[consensus_checks(proposals)]
        )
        assert report.ok

    def test_step_complexity_linear_in_k(self):
        # propose is O(k): 1 write + 1 transfer + ≤(k-1) allowance reads + 1
        # register read.
        for k in (2, 4, 6):
            system = algorithm1_system({pid: pid for pid in range(k)})
            result = run_system(system)
            per_process = max(r.steps_taken for r in result.runners)
            assert per_process <= k + 3
