"""Tests for Algorithm 2 (Theorem 4): the token emulation from k-AT.

Covers: sequential equivalence with the restricted specification (corrected
variant), the literal variant's quirks (guard over-rejection, allowance leak,
non-atomic supply), the Q_k confinement invariant, and — via exhaustive
exploration plus the linearizability checker — the multi-writer
approve/transferFrom race (DESIGN.md, Reproduction note 2).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.spenders import potential_level
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.restricted import restrict_to_potential_qk
from repro.protocols.token_from_kat import (
    EmulatedToken,
    run_sequential,
    workload_program,
)
from repro.runtime.executor import System
from repro.runtime.explorer import ScheduleExplorer
from repro.spec.linearizability import check_linearizability
from repro.spec.operation import Operation

METHODS = {
    "transfer": "transfer",
    "transferFrom": "transfer_from",
    "approve": "approve",
    "balanceOf": "balance_of",
    "allowance": "allowance",
    "totalSupply": "total_supply",
}


def spec_and_emulation(n: int, k: int, supply: int = 12, variant: str = "corrected"):
    state = TokenState.deploy(n, supply)
    spec = restrict_to_potential_qk(ERC20TokenType(n), k)
    emulated = EmulatedToken(state, k=k, variant=variant)
    return spec, state, emulated


class TestConstruction:
    def test_rejects_states_beyond_k(self):
        state = TokenState.create([5, 0, 0], {(0, 1): 1, (0, 2): 1})
        with pytest.raises(InvalidArgumentError):
            EmulatedToken(state, k=2)

    def test_accepts_states_within_k(self):
        state = TokenState.create([5, 0, 0], {(0, 1): 1})
        emulated = EmulatedToken(state, k=2)
        assert emulated.kat.state[0].balances == (5, 0, 0)

    def test_variant_validated(self):
        with pytest.raises(InvalidArgumentError):
            EmulatedToken(TokenState.deploy(2, 5), k=1, variant="bogus")

    def test_base_objects_enumerated(self):
        emulated = EmulatedToken(TokenState.deploy(2, 5), k=1)
        # 1 kat + 2x2 allowance registers.
        assert len(emulated.base_objects) == 5


class TestSequentialEquivalence:
    """Corrected variant ≡ restricted Definition 3, sequentially."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_workloads(self, seed):
        rng = random.Random(seed)
        n = rng.choice([3, 4])
        k = rng.choice([2, 3])
        spec, spec_state, emulated = spec_and_emulation(n, k)
        for _ in range(250):
            pid = rng.randrange(n)
            name = rng.choice(list(METHODS))
            if name == "transfer":
                args = (rng.randrange(n), rng.randint(0, 5))
            elif name == "transferFrom":
                args = (rng.randrange(n), rng.randrange(n), rng.randint(0, 5))
            elif name == "approve":
                args = (rng.randrange(n), rng.randint(0, 5))
            elif name == "balanceOf":
                args = (rng.randrange(n),)
            elif name == "allowance":
                args = (rng.randrange(n), rng.randrange(n))
            else:
                args = ()
            spec_state, expected = spec.apply(
                spec_state, pid, Operation(name, args)
            )
            actual = run_sequential(emulated, pid, METHODS[name], *args)
            assert actual == expected, (
                f"divergence on {name}{args} by p{pid}: "
                f"spec={expected!r} emulation={actual!r}"
            )

    def test_example1_through_emulation(self):
        # The paper's Example 1 executed on the emulated object.
        _, _, emulated = spec_and_emulation(3, 2, supply=10)
        assert run_sequential(emulated, 0, "transfer", 1, 3) is True
        assert run_sequential(emulated, 1, "approve", 2, 5) is True
        assert run_sequential(emulated, 2, "transfer_from", 1, 2, 5) is False
        assert run_sequential(emulated, 2, "transfer_from", 1, 0, 1) is True
        assert run_sequential(emulated, 0, "balance_of", 0) == 8
        assert run_sequential(emulated, 0, "balance_of", 1) == 2
        assert run_sequential(emulated, 0, "allowance", 1, 2) == 4


class TestQkConfinement:
    def test_approve_beyond_k_rejected(self):
        _, _, emulated = spec_and_emulation(4, 2)
        assert run_sequential(emulated, 0, "approve", 1, 3) is True
        assert run_sequential(emulated, 0, "approve", 2, 3) is False

    def test_revocation_reopens_slot(self):
        _, _, emulated = spec_and_emulation(4, 2)
        run_sequential(emulated, 0, "approve", 1, 3)
        assert run_sequential(emulated, 0, "approve", 1, 0) is True
        assert run_sequential(emulated, 0, "approve", 2, 3) is True

    def test_potential_level_invariant_holds_along_workload(self):
        rng = random.Random(99)
        n, k = 4, 2
        spec, spec_state, emulated = spec_and_emulation(n, k)
        for _ in range(300):
            pid = rng.randrange(n)
            name = rng.choice(["transfer", "transferFrom", "approve"])
            if name == "transfer":
                args = (rng.randrange(n), rng.randint(0, 4))
            elif name == "transferFrom":
                args = (rng.randrange(n), rng.randrange(n), rng.randint(0, 4))
            else:
                args = (rng.randrange(n), rng.randint(0, 4))
            spec_state, _ = spec.apply(spec_state, pid, Operation(name, args))
            run_sequential(emulated, pid, METHODS[name], *args)
            assert potential_level(spec_state) <= k


class TestLiteralVariantQuirks:
    """Reproduction notes 3 and 4: the literal algorithm's deviations."""

    def test_literal_guard_rejects_reapproval_at_k(self):
        _, _, emulated = spec_and_emulation(4, 2, variant="literal")
        assert run_sequential(emulated, 0, "approve", 1, 3) is True
        # Re-approving the SAME spender is rejected by the literal guard
        # (count == k), though the spec would allow it.
        assert run_sequential(emulated, 0, "approve", 1, 5) is False
        # Corrected variant allows it.
        _, _, corrected = spec_and_emulation(4, 2, variant="corrected")
        assert run_sequential(corrected, 0, "approve", 1, 3) is True
        assert run_sequential(corrected, 0, "approve", 1, 5) is True

    def test_literal_guard_rejects_revocation_at_k(self):
        _, _, emulated = spec_and_emulation(4, 2, variant="literal")
        run_sequential(emulated, 0, "approve", 1, 3)
        assert run_sequential(emulated, 0, "approve", 1, 0) is False

    def test_literal_allowance_leak_on_failed_transfer(self):
        # Allowance 5 but balance 3: the literal algorithm decrements the
        # allowance register before k-AT.transfer fails, and never restores.
        state = TokenState.create([0, 3, 0], {(1, 2): 5})
        literal = EmulatedToken(state, k=2, variant="literal")
        assert run_sequential(literal, 2, "transfer_from", 1, 2, 5) is False
        assert run_sequential(literal, 2, "allowance", 1, 2) == 0  # leaked!
        corrected = EmulatedToken(state, k=2, variant="corrected")
        assert run_sequential(corrected, 2, "transfer_from", 1, 2, 5) is False
        assert run_sequential(corrected, 2, "allowance", 1, 2) == 5  # restored

    def test_literal_zero_value_transfer_from_deviates(self):
        # Definition 3 returns TRUE for value-0 transferFrom by anyone; the
        # literal algorithm forwards to k-AT, which rejects non-owners.
        state = TokenState.deploy(3, 5)
        literal = EmulatedToken(state, k=2, variant="literal")
        assert run_sequential(literal, 1, "transfer_from", 0, 2, 0) is False
        corrected = EmulatedToken(state, k=2, variant="corrected")
        assert run_sequential(corrected, 1, "transfer_from", 0, 2, 0) is True

    def test_literal_total_supply_sequentially_correct(self):
        _, _, literal = spec_and_emulation(3, 2, supply=9, variant="literal")
        assert run_sequential(literal, 0, "total_supply") == 9


class TestConcurrentLinearizability:
    """Exploration + Wing&Gong on the emulated-object histories."""

    @staticmethod
    def _factory(initial: TokenState, k: int, variant: str, steps_by_pid: dict):
        def build() -> System:
            from repro.spec.history import History

            history = History()
            emulated = EmulatedToken(
                initial, k=k, variant=variant, history=history
            )
            pids = sorted(steps_by_pid)
            programs = [
                (
                    lambda p=pid: workload_program(
                        emulated, p, steps_by_pid[p]
                    )
                )
                for pid in pids
            ]
            return System(
                programs=programs,
                objects=emulated.base_objects,
                meta={"history": history, "emulated": emulated},
                pids=pids,
            )

        return build

    @staticmethod
    def _linearizability_check(spec_type, initial_state):
        def check(runners, system, schedule):
            history = system.meta["history"]
            result = check_linearizability(
                history.project(system.meta["emulated"].name),
                spec_type,
                initial_state=initial_state,
            )
            if not result.is_linearizable:
                rendered = "; ".join(str(e) for e in history)
                return [f"non-linearizable history: {rendered}"]
            return []

        return check

    def test_disjoint_account_concurrency_is_linearizable(self):
        # Two owners working on their own accounts concurrently: always
        # linearizable, under every interleaving.
        initial = TokenState.create([5, 5, 0])
        spec = restrict_to_potential_qk(ERC20TokenType(3), 2)
        steps = {
            0: [("transfer", (2, 3)), ("balance_of", (0,))],
            1: [("transfer", (2, 4)), ("balance_of", (1,))],
        }
        factory = self._factory(initial, 2, "corrected", steps)
        report = ScheduleExplorer(factory).explore(
            checks=[self._linearizability_check(spec, initial)]
        )
        assert report.ok, report.violations[:1]

    def test_spender_race_on_same_account_is_linearizable(self):
        # Two spenders racing on one account: the k-AT balance check
        # adjudicates atomically; histories stay linearizable.
        initial = TokenState.create([5, 0, 0], {(0, 1): 5, (0, 2): 5})
        spec = restrict_to_potential_qk(ERC20TokenType(3), 3)
        steps = {
            1: [("transfer_from", (0, 1, 5))],
            2: [("transfer_from", (0, 2, 5))],
        }
        factory = self._factory(initial, 3, "corrected", steps)
        report = ScheduleExplorer(factory).explore(
            checks=[self._linearizability_check(spec, initial)]
        )
        assert report.ok, report.violations[:1]

    def test_approve_race_breaks_linearizability(self):
        # Reproduction note 2: the allowance cell is multi-writer (owner's
        # approve vs spender's decrement) — some interleaving loses one of
        # the updates and no linearization explains the final reads.
        initial = TokenState.create([10, 0], {(0, 1): 5})
        spec = restrict_to_potential_qk(ERC20TokenType(2), 2)
        steps = {
            0: [("approve", (1, 10)), ("allowance", (0, 1))],
            1: [("transfer_from", (0, 1, 5))],
        }
        factory = self._factory(initial, 2, "corrected", steps)
        report = ScheduleExplorer(factory).explore(
            checks=[self._linearizability_check(spec, initial)]
        )
        assert not report.ok, (
            "the multi-writer approve race must surface as a "
            "non-linearizable history on some schedule"
        )
