"""Tests for the executor."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.objects.register import AtomicRegister
from repro.runtime.executor import System, run_system, run_under_schedules
from repro.runtime.scheduler import (
    CrashAction,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
)


def make_counter_system() -> System:
    """Two processes incrementing a shared register (racy by design)."""
    register = AtomicRegister(initial=0)

    def incrementer():
        value = yield register.read()
        yield register.write(value + 1)
        return value + 1

    return System(
        programs=[incrementer, incrementer],
        objects=[register],
    )


class TestRunSystem:
    def test_all_processes_complete(self):
        result = run_system(make_counter_system())
        assert set(result.decisions) == {0, 1}
        assert result.crashed == frozenset()
        assert result.steps == 4

    def test_round_robin_interleaving_loses_update(self):
        # Both read 0 before either writes: the classic lost update, proving
        # the executor interleaves at operation granularity.
        result = run_system(make_counter_system(), RoundRobinScheduler())
        register = None
        assert result.decisions == {0: 1, 1: 1}

    def test_solo_schedule_is_sequential(self):
        result = run_system(make_counter_system(), SoloScheduler([0, 1]))
        assert result.decisions == {0: 1, 1: 2}

    def test_fixed_schedule_replay(self):
        result = run_system(
            make_counter_system(), FixedScheduler([0, 0, 1, 1])
        )
        assert result.decisions == {0: 1, 1: 2}

    def test_crash_action(self):
        result = run_system(
            make_counter_system(), FixedScheduler([CrashAction(0), 1, 1])
        )
        assert result.crashed == frozenset({0})
        assert result.decisions == {1: 1}

    def test_history_recorded(self):
        result = run_system(make_counter_system())
        assert result.history.is_well_formed()
        assert len(result.history.completed_calls()) == 4

    def test_step_budget_enforced(self):
        register = AtomicRegister(initial=0)

        def spinner():
            while True:
                yield register.read()

        system = System(programs=[spinner], objects=[register])
        with pytest.raises(SchedulingError):
            run_system(system, max_steps=10)

    def test_custom_pids(self):
        register = AtomicRegister(initial=0)

        def write_pid(pid):
            def program():
                yield register.write(pid)
                return pid

            return program

        system = System(
            programs=[write_pid(7), write_pid(3)],
            objects=[register],
            pids=[7, 3],
        )
        result = run_system(system, SoloScheduler([7, 3]))
        assert result.decisions == {7: 7, 3: 3}

    def test_duplicate_pids_rejected(self):
        register = AtomicRegister()
        system = System(
            programs=[lambda: iter(()), lambda: iter(())],
            objects=[register],
            pids=[1, 1],
        )
        with pytest.raises(SchedulingError):
            run_system(system)


class TestRunUnderSchedules:
    def test_sweep(self):
        results = run_under_schedules(
            make_counter_system,
            [RandomScheduler(seed) for seed in range(5)],
        )
        assert len(results) == 5
        for result in results:
            assert set(result.decisions) == {0, 1}
