"""Tests for the exhaustive schedule explorer."""

from __future__ import annotations

import pytest

from repro.errors import ExplorationLimitError
from repro.objects.register import AtomicRegister
from repro.runtime.executor import System
from repro.runtime.explorer import ScheduleExplorer
from repro.runtime.process import ProcessStatus
from repro.runtime.scheduler import StepAction


def counter_factory() -> System:
    register = AtomicRegister(initial=0)

    def incrementer():
        value = yield register.read()
        yield register.write(value + 1)
        return value + 1

    return System(programs=[incrementer, incrementer], objects=[register])


class TestExploration:
    def test_finds_all_outcomes(self):
        explorer = ScheduleExplorer(counter_factory)
        report = explorer.explore()
        # Outcomes: sequential orders give {1, 2}; racy orders give {1, 1}.
        assert report.outcomes == {1, 2}

    def test_execution_and_config_counts(self):
        explorer = ScheduleExplorer(counter_factory)
        report = explorer.explore()
        assert report.executions >= 2
        assert report.configs > report.executions

    def test_terminal_check_sees_every_distinct_completion(self):
        seen = []

        def check(runners, system, schedule):
            seen.append(
                tuple(
                    r.result
                    for r in runners
                    if r.status is ProcessStatus.DONE
                )
            )
            return []

        ScheduleExplorer(counter_factory).explore(checks=[check])
        assert (1, 1) in seen  # the lost-update completion
        assert (1, 2) in seen or (2, 1) in seen

    def test_violations_reported_with_schedule(self):
        def check(runners, system, schedule):
            results = [r.result for r in runners]
            if results == [1, 1]:
                return ["lost update"]
            return []

        report = ScheduleExplorer(counter_factory).explore(checks=[check])
        assert not report.ok
        violation = report.violations[0]
        assert "lost update" in str(violation)
        assert len(violation.schedule) == 4

    def test_crash_budget_explores_crash_branches(self):
        base = ScheduleExplorer(counter_factory).explore()
        crashy = ScheduleExplorer(counter_factory, crash_budget=1).explore()
        assert crashy.executions > base.executions

    def test_memoization_shrinks_tree(self):
        # Without memoization the interleaving tree has C(4,2)=6 leaves; the
        # explorer visits fewer distinct configurations than raw schedules.
        explorer = ScheduleExplorer(counter_factory)
        report = explorer.explore()
        # Raw interleavings: 6 schedules x 5 prefixes each; memoized distinct
        # configurations come in far lower.
        assert report.configs <= 15

    def test_max_configs_enforced(self):
        explorer = ScheduleExplorer(counter_factory, max_configs=2)
        with pytest.raises(ExplorationLimitError):
            explorer.explore()

    def test_max_steps_detects_divergence(self):
        def diverging_factory() -> System:
            register = AtomicRegister(initial=0)

            def spinner():
                while True:
                    yield register.read()

            return System(programs=[spinner], objects=[register])

        explorer = ScheduleExplorer(diverging_factory, max_steps=20)
        with pytest.raises(ExplorationLimitError):
            explorer.explore()


class TestPrefixQueries:
    def test_outcomes_from_prefix(self):
        explorer = ScheduleExplorer(counter_factory)
        explorer.explore()
        # After p0 reads and p1 reads (both see 0), both must write 1.
        outcomes = explorer.outcomes_from((StepAction(0), StepAction(1)))
        assert outcomes == {1}

    def test_children(self):
        explorer = ScheduleExplorer(counter_factory)
        children = explorer.children(())
        assert len(children) == 2
        assert children[0][-1] == StepAction(0)

    def test_pending_operations_rendered(self):
        explorer = ScheduleExplorer(counter_factory)
        pending = explorer.pending_operations(())
        assert set(pending) == {0, 1}
        assert "read" in pending[0]
