"""Tests for process runners."""

from __future__ import annotations

import pytest

from repro.errors import ProcessCrashedError, SchedulingError
from repro.objects.register import AtomicRegister
from repro.runtime.process import ProcessRunner, ProcessStatus
from repro.spec.history import History


def writer_program(register: AtomicRegister, values: list):
    def program():
        for value in values:
            yield register.write(value)
        return "done"

    return program


class TestRunnerLifecycle:
    def test_primed_to_first_yield(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, [1, 2]))
        assert runner.status is ProcessStatus.READY
        assert runner.pending is not None
        # Priming must not execute the operation.
        assert register.invoke(0, register.read().operation) is None

    def test_step_executes_one_op(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, [1, 2]))
        runner.step()
        assert register.invoke(0, register.read().operation) == 1
        assert runner.status is ProcessStatus.READY

    def test_completion_captures_result(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, [1]))
        runner.step()
        assert runner.status is ProcessStatus.DONE
        assert runner.result == "done"
        assert runner.pending is None

    def test_empty_program_completes_immediately(self):
        def program():
            return 42
            yield  # pragma: no cover - makes this a generator function

        runner = ProcessRunner(0, program)
        assert runner.status is ProcessStatus.DONE
        assert runner.result == 42

    def test_step_after_done_raises(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, []))
        with pytest.raises(SchedulingError):
            runner.step()

    def test_responses_recorded(self):
        register = AtomicRegister(initial=7)

        def program():
            value = yield register.read()
            yield register.write(value + 1)
            return value

        runner = ProcessRunner(0, program)
        runner.step()
        runner.step()
        assert runner.responses == (7, True)
        assert runner.result == 7


class TestCrash:
    def test_crashed_process_stops(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, [1, 2]))
        runner.crash()
        assert runner.status is ProcessStatus.CRASHED
        assert not runner.is_runnable
        with pytest.raises(ProcessCrashedError):
            runner.step()

    def test_crash_after_done_is_noop(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, []))
        runner.crash()
        assert runner.status is ProcessStatus.DONE

    def test_pending_op_not_executed_on_crash(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, [9]))
        runner.crash()
        assert register.invoke(0, register.read().operation) is None


class TestHistoryRecording:
    def test_invocation_response_pairs(self):
        register = AtomicRegister()
        history = History()
        runner = ProcessRunner(3, writer_program(register, [5]))
        runner.step(history)
        assert len(history.events) == 2
        assert history.is_well_formed()
        calls = history.completed_calls()
        assert calls[0].pid == 3
        assert calls[0].operation.name == "write"


class TestMemoKeys:
    def test_ready_key_tracks_responses(self):
        register = AtomicRegister(initial=1)

        def program():
            value = yield register.read()
            yield register.write(value)
            return value

        runner_a = ProcessRunner(0, program)
        runner_b = ProcessRunner(0, program)
        assert runner_a.memo_key() == runner_b.memo_key()
        runner_a.step()
        assert runner_a.memo_key() != runner_b.memo_key()

    def test_done_key_includes_result(self):
        register = AtomicRegister()
        runner = ProcessRunner(0, writer_program(register, []))
        assert runner.memo_key() == ("done", "done")

    def test_bad_yield_detected(self):
        def program():
            yield "not an opcall"

        with pytest.raises(SchedulingError):
            ProcessRunner(0, program)
