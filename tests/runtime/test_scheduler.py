"""Tests for schedulers."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.runtime.scheduler import (
    CrashAction,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    StepAction,
)


class TestRoundRobin:
    def test_cycles_through_processes(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.next_action([0, 1, 2], i).pid for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_processes(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.next_action([0, 1, 2], 0).pid == 0
        assert scheduler.next_action([2], 1).pid == 2
        assert scheduler.next_action([0, 2], 2).pid == 0


class TestRandom:
    def test_deterministic_per_seed(self):
        picks_a = [
            RandomScheduler(seed=42).next_action([0, 1, 2], i).pid
            for i in range(10)
        ]
        picks_b = [
            RandomScheduler(seed=42).next_action([0, 1, 2], i).pid
            for i in range(10)
        ]
        assert picks_a == picks_b

    def test_different_seeds_differ(self):
        def schedule(seed):
            scheduler = RandomScheduler(seed=seed)
            return [
                scheduler.next_action(list(range(5)), i).pid for i in range(20)
            ]

        assert schedule(1) != schedule(2)

    def test_crash_budget_respected(self):
        scheduler = RandomScheduler(
            seed=0, crash_probability=1.0, crash_budget=2
        )
        crashes = 0
        for i in range(20):
            action = scheduler.next_action([0, 1, 2], i)
            if isinstance(action, CrashAction):
                crashes += 1
        assert crashes == 2

    def test_never_crashes_last_process(self):
        scheduler = RandomScheduler(
            seed=0, crash_probability=1.0, crash_budget=5
        )
        action = scheduler.next_action([1], 0)
        assert isinstance(action, StepAction)

    def test_invalid_probability(self):
        with pytest.raises(SchedulingError):
            RandomScheduler(crash_probability=1.5)


class TestFixed:
    def test_replays_sequence(self):
        scheduler = FixedScheduler([0, 1, CrashAction(0), 1])
        assert scheduler.next_action([0, 1], 0) == StepAction(0)
        assert scheduler.next_action([0, 1], 1) == StepAction(1)
        assert scheduler.next_action([0, 1], 2) == CrashAction(0)
        assert scheduler.next_action([1], 3) == StepAction(1)
        assert scheduler.exhausted

    def test_exhaustion_raises(self):
        scheduler = FixedScheduler([0])
        scheduler.next_action([0], 0)
        with pytest.raises(SchedulingError):
            scheduler.next_action([0], 1)

    def test_non_runnable_pid_raises(self):
        scheduler = FixedScheduler([5])
        with pytest.raises(SchedulingError):
            scheduler.next_action([0, 1], 0)


class TestSolo:
    def test_prefers_order(self):
        scheduler = SoloScheduler([2, 0, 1])
        assert scheduler.next_action([0, 1, 2], 0).pid == 2
        assert scheduler.next_action([0, 1], 1).pid == 0
        assert scheduler.next_action([1], 2).pid == 1

    def test_falls_back_to_lowest(self):
        scheduler = SoloScheduler([5])
        assert scheduler.next_action([1, 3], 0).pid == 1
