"""Tests for concurrent histories."""

from __future__ import annotations

import pytest

from repro.errors import HistoryError
from repro.spec.history import History, sequential_history
from repro.spec.operation import op


def make_overlapping_history() -> History:
    """p0's write overlaps p1's read on object r."""
    history = History()
    history.invoke(0, "r", op("write", 5))
    history.invoke(1, "r", op("read"))
    history.respond(0, "r", op("write", 5), True)
    history.respond(1, "r", op("read"), 5)
    return history


class TestWellFormedness:
    def test_empty_is_well_formed(self):
        assert History().is_well_formed()

    def test_overlapping_history_is_well_formed(self):
        assert make_overlapping_history().is_well_formed()

    def test_double_invocation_is_malformed(self):
        history = History()
        history.invoke(0, "r", op("read"))
        history.invoke(0, "r", op("read"))
        assert not history.is_well_formed()

    def test_response_without_invocation_is_malformed(self):
        history = History()
        history.respond(0, "r", op("read"), 1)
        assert not history.is_well_formed()

    def test_mismatched_response_is_malformed(self):
        history = History()
        history.invoke(0, "r", op("read"))
        history.respond(0, "r", op("write", 2), True)
        assert not history.is_well_formed()

    def test_completed_calls_raises_on_malformed(self):
        history = History()
        history.respond(0, "r", op("read"), 1)
        with pytest.raises(HistoryError):
            history.completed_calls()


class TestCompletedCalls:
    def test_matching(self):
        history = make_overlapping_history()
        calls = history.completed_calls()
        assert len(calls) == 2
        write = next(c for c in calls if c.operation.name == "write")
        read = next(c for c in calls if c.operation.name == "read")
        assert write.result is True
        assert read.result == 5

    def test_overlap_detection(self):
        calls = make_overlapping_history().completed_calls()
        assert calls[0].overlaps(calls[1])
        assert not calls[0].precedes(calls[1])

    def test_precedence(self):
        history = History()
        history.invoke(0, "r", op("write", 1))
        history.respond(0, "r", op("write", 1), True)
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), 1)
        calls = history.completed_calls()
        write = next(c for c in calls if c.pid == 0)
        read = next(c for c in calls if c.pid == 1)
        assert write.precedes(read)
        assert not write.overlaps(read)

    def test_pending_invocations(self):
        history = History()
        history.invoke(0, "r", op("write", 1))
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), None)
        pending = history.pending_invocations()
        assert len(pending) == 1
        assert pending[0].pid == 0


class TestProjection:
    def test_project_by_object(self):
        history = History()
        history.invoke(0, "a", op("read"))
        history.respond(0, "a", op("read"), 1)
        history.invoke(0, "b", op("read"))
        history.respond(0, "b", op("read"), 2)
        assert len(history.project("a")) == 2
        assert len(history.project("b")) == 2
        assert len(history.project("c")) == 0

    def test_process_events(self):
        history = make_overlapping_history()
        assert len(history.process_events(0)) == 2
        assert len(history.process_events(1)) == 2


class TestSequentialHistory:
    def test_builder(self):
        history = sequential_history(
            [(0, "r", op("write", 1), True), (1, "r", op("read"), 1)]
        )
        assert history.is_well_formed()
        calls = history.completed_calls()
        assert calls[0].precedes(calls[1])
