"""Tests for the linearizability checker."""

from __future__ import annotations

from repro.objects.erc20 import ERC20TokenType
from repro.objects.register import RegisterType
from repro.spec.history import History, sequential_history
from repro.spec.linearizability import check_linearizability
from repro.spec.operation import op


class TestRegisterHistories:
    def test_sequential_history_linearizable(self):
        history = sequential_history(
            [(0, "r", op("write", 1), True), (1, "r", op("read"), 1)]
        )
        result = check_linearizability(history, RegisterType())
        assert result.is_linearizable
        assert result.witness is not None

    def test_concurrent_read_may_return_either_value(self):
        # Read overlapping a write may return old or new value.
        for read_value in (None, 5):
            history = History()
            history.invoke(0, "r", op("write", 5))
            history.invoke(1, "r", op("read"))
            history.respond(1, "r", op("read"), read_value)
            history.respond(0, "r", op("write", 5), True)
            result = check_linearizability(history, RegisterType())
            assert result.is_linearizable, f"read={read_value!r} must linearize"

    def test_stale_read_after_write_completes_is_not_linearizable(self):
        # The write completed strictly before the read began, yet the read
        # returns the old value: violates real-time order.
        history = History()
        history.invoke(0, "r", op("write", 5))
        history.respond(0, "r", op("write", 5), True)
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), None)
        result = check_linearizability(history, RegisterType())
        assert not result.is_linearizable

    def test_new_old_inversion_rejected(self):
        # Two sequential reads observing w2 then w1 violate ordering.
        history = History()
        history.invoke(0, "r", op("write", 1))
        history.respond(0, "r", op("write", 1), True)
        history.invoke(0, "r", op("write", 2))
        history.respond(0, "r", op("write", 2), True)
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), 2)
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), 1)
        result = check_linearizability(history, RegisterType())
        assert not result.is_linearizable

    def test_pending_write_may_take_effect(self):
        # A crashed writer's pending write may be linearized to explain a read.
        history = History()
        history.invoke(0, "r", op("write", 9))  # never responds (crash)
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), 9)
        result = check_linearizability(history, RegisterType())
        assert result.is_linearizable

    def test_pending_write_may_be_dropped(self):
        history = History()
        history.invoke(0, "r", op("write", 9))  # never responds
        history.invoke(1, "r", op("read"))
        history.respond(1, "r", op("read"), None)
        result = check_linearizability(history, RegisterType())
        assert result.is_linearizable


class TestTokenHistories:
    def test_concurrent_transfers_linearizable(self):
        token = ERC20TokenType(3, total_supply=10)
        history = History()
        history.invoke(0, "t", op("transfer", 1, 4))
        history.invoke(1, "t", op("transfer", 2, 1))
        # p1's transfer can only succeed if p0's landed first.
        history.respond(1, "t", op("transfer", 2, 1), True)
        history.respond(0, "t", op("transfer", 1, 4), True)
        result = check_linearizability(history, token)
        assert result.is_linearizable

    def test_impossible_double_spend_rejected(self):
        # Balance 10; two sequential (non-overlapping) transfers of 10 from
        # the same account cannot both succeed.
        token = ERC20TokenType(3, total_supply=10)
        history = History()
        history.invoke(0, "t", op("transfer", 1, 10))
        history.respond(0, "t", op("transfer", 1, 10), True)
        history.invoke(0, "t", op("transfer", 2, 10))
        history.respond(0, "t", op("transfer", 2, 10), True)
        result = check_linearizability(history, token)
        assert not result.is_linearizable

    def test_allowance_read_must_be_consistent(self):
        token = ERC20TokenType(2)
        history = History()
        history.invoke(0, "t", op("approve", 1, 5))
        history.respond(0, "t", op("approve", 1, 5), True)
        history.invoke(1, "t", op("allowance", 0, 1))
        history.respond(1, "t", op("allowance", 0, 1), 0)  # stale: not allowed
        result = check_linearizability(history, token)
        assert not result.is_linearizable

    def test_explored_counter_populated(self):
        history = sequential_history([(0, "t", op("totalSupply"), 10)])
        result = check_linearizability(
            history, ERC20TokenType(2, total_supply=10)
        )
        assert result.explored >= 1
