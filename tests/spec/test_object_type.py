"""Tests for the sequential object-type formalism."""

from __future__ import annotations

import pytest

from repro.errors import UnknownOperationError
from repro.objects.erc20 import ERC20TokenType
from repro.objects.register import RegisterType
from repro.spec.operation import op


class TestRegisterAsObjectType:
    def test_initial_state_is_bottom(self):
        assert RegisterType().initial_state() is None

    def test_custom_initial(self):
        assert RegisterType(42).initial_state() == 42

    def test_read_returns_state(self):
        register = RegisterType(7)
        state, result = register.apply(7, 0, op("read"))
        assert state == 7
        assert result == 7

    def test_write_replaces_state(self):
        register = RegisterType()
        state, result = register.apply(None, 0, op("write", 9))
        assert state == 9
        assert result is True

    def test_unknown_operation_raises(self):
        with pytest.raises(UnknownOperationError):
            RegisterType().apply(None, 0, op("compareAndSwap", 1, 2))


class TestReadOnlyDetection:
    def test_read_is_read_only(self):
        register = RegisterType(3)
        assert register.is_read_only(3, 0, op("read"))

    def test_write_is_not_read_only(self):
        register = RegisterType(3)
        assert not register.is_read_only(3, 0, op("write", 4))

    def test_identical_write_is_read_only(self):
        # Writing the current value leaves the state unchanged: semantically
        # read-only at this state (the notion Theorem 3's proof uses).
        register = RegisterType(3)
        assert register.is_read_only(3, 0, op("write", 3))

    def test_failed_transfer_is_read_only(self):
        token = ERC20TokenType(2, total_supply=1)
        state = token.initial_state()
        # p1 has balance 0; its transfer fails and preserves the state.
        assert token.is_read_only(state, 1, op("transfer", 0, 1))


class TestRun:
    def test_run_sequence(self):
        token = ERC20TokenType(3, total_supply=10)
        final, responses = token.run(
            [
                (0, op("transfer", 1, 4)),
                (1, op("approve", 2, 2)),
                (2, op("transferFrom", 1, 2, 2)),
            ]
        )
        assert responses == [True, True, True]
        assert final.balances == (6, 2, 2)

    def test_run_from_state(self):
        token = ERC20TokenType(2, total_supply=5)
        mid, _ = token.run([(0, op("transfer", 1, 5))])
        final, responses = token.run([(1, op("transfer", 0, 5))], state=mid)
        assert final.balances == (5, 0)
        assert responses == [True]

    def test_run_empty(self):
        token = ERC20TokenType(2)
        final, responses = token.run([])
        assert final == token.initial_state()
        assert responses == []
