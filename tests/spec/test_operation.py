"""Tests for repro.spec.operation."""

from __future__ import annotations

import pytest

from repro.spec.operation import Invocation, Operation, Response, op


class TestOperation:
    def test_construction(self):
        operation = Operation("transfer", (1, 5))
        assert operation.name == "transfer"
        assert operation.args == (1, 5)

    def test_op_helper(self):
        assert op("transfer", 1, 5) == Operation("transfer", (1, 5))

    def test_no_args(self):
        assert op("totalSupply") == Operation("totalSupply", ())

    def test_hashable(self):
        table = {op("transfer", 1, 5): "a", op("approve", 2, 3): "b"}
        assert table[Operation("transfer", (1, 5))] == "a"

    def test_equality_distinguishes_args(self):
        assert op("transfer", 1, 5) != op("transfer", 1, 6)
        assert op("transfer", 1, 5) != op("approve", 1, 5)

    def test_immutable(self):
        operation = op("transfer", 1, 5)
        with pytest.raises(AttributeError):
            operation.name = "approve"

    def test_str(self):
        assert str(op("transfer", 1, 5)) == "transfer(1, 5)"
        assert str(op("totalSupply")) == "totalSupply()"


class TestEvents:
    def test_invocation_str(self):
        invocation = Invocation(2, "token", op("approve", 1, 5))
        assert "p2" in str(invocation)
        assert "token" in str(invocation)

    def test_response_carries_result(self):
        response = Response(1, "token", op("balanceOf", 0), 7)
        assert response.result == 7
        assert "7" in str(response)

    def test_events_hashable(self):
        event = Invocation(0, "r", op("read"))
        assert hash(event) == hash(Invocation(0, "r", op("read")))
