"""SyncPlanner tier selection and the TieredEscalator's accounting."""

from __future__ import annotations

import math

import pytest

from repro.engine import ConsensusEscalator, OpClassifier, tiered_escalator
from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.erc721 import ERC721TokenType
from repro.objects.footprint import bal, footprint
from repro.spec.operation import op
from repro.sync import SyncPlanner, TIER_GLOBAL, component_team


class FootprintTable:
    """A classifier stub serving hand-crafted footprints keyed by seq —
    contention shapes the token types cannot express directly."""

    def __init__(self, table):
        self.table = table

    def footprint(self, pending):
        return self.table[pending.seq]


def erc20_fixture():
    token = ERC20TokenType(
        8,
        initial_state=TokenState.create(
            [10] * 8, allowances={(0, 1): 5, (0, 2): 3}
        ),
    )
    return token, OpClassifier(token), token.initial_state()


class TestComponentTeam:
    def test_erc20_team_is_spenders_plus_participants(self):
        token, classifier, state = erc20_fixture()
        # Two enabled spenders of account 0 racing a transfer by its owner.
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        team = component_team(classifier, ops, state, token)
        # Spender bound of account 0 = {0 (owner), 1, 2 (allowances)};
        # participants {0, 1} are already inside.
        assert team == frozenset({0, 1, 2})

    def test_asset_transfer_uses_static_owner_map(self):
        owner_map = [{0, 1, 2}, {3}, {3, 4}]
        asset = AssetTransferType(
            [10, 10, 10], owner_map=owner_map, num_processes=5
        )
        classifier = OpClassifier(asset)
        ops = [
            PendingOp(0, 0, op("transfer", 0, 1, 2)),
            PendingOp(1, 2, op("transfer", 0, 2, 1)),
        ]
        team = component_team(classifier, ops, asset.initial_state(), asset)
        assert team == frozenset({0, 1, 2})

    def test_unboundable_object_returns_none(self):
        nft = ERC721TokenType(4, initial_owners=[0, 1, 2, 3])
        classifier = OpClassifier(nft)
        ops = [
            PendingOp(0, 0, op("transferFrom", 0, 1, 0)),
            PendingOp(1, 2, op("transferFrom", 0, 2, 0)),
        ]
        assert component_team(classifier, ops, nft.initial_state(), nft) is None

    def test_no_state_returns_none(self):
        token, classifier, _ = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        assert component_team(classifier, ops, None, token) is None


class TestSyncPlanner:
    def test_threshold_zero_is_always_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        [assignment] = SyncPlanner(0).assign([ops], classifier, state, token)
        assert assignment.tier == TIER_GLOBAL
        assert assignment.team is None

    def test_small_team_gets_a_lane_large_goes_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        [small] = SyncPlanner(3).assign([ops], classifier, state, token)
        assert small.tier == 3
        assert small.team == frozenset({0, 1, 2})
        [over] = SyncPlanner(2).assign([ops], classifier, state, token)
        assert over.tier == TIER_GLOBAL

    def test_decide_sizes_precomputed_teams(self):
        planner = SyncPlanner(4)
        assert planner.decide(frozenset({1, 2})).tier == 2
        assert planner.decide(frozenset(range(9))).tier == TIER_GLOBAL
        assert planner.decide(None).tier == TIER_GLOBAL

    def test_empty_component_rejected(self):
        token, classifier, state = erc20_fixture()
        with pytest.raises(EngineError):
            SyncPlanner(2).assign([[]], classifier, state, token)

    def test_negative_threshold_rejected(self):
        with pytest.raises(EngineError):
            SyncPlanner(-1)


def two_account_component():
    """One component interleaving two disjoint contention sets: spenders
    of account 0 (seqs 0, 2) and account 5's own transfers (seqs 1, 3)."""
    return [
        PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
        PendingOp(1, 5, op("transfer", 6, 2)),
        PendingOp(2, 2, op("transferFrom", 0, 4, 1)),
        PendingOp(3, 5, op("transfer", 7, 1)),
    ]


class TestSyncGroups:
    def test_disjoint_accounts_split_in_submission_order(self):
        _, classifier, _ = erc20_fixture()
        ops = two_account_component()
        planner = SyncPlanner(4, split_sync=True)
        groups = planner.split_groups(ops, classifier)
        # Groups come out in submission order of their first op, members
        # in submission order; flattening recovers the component exactly.
        assert groups == [(ops[0], ops[2]), (ops[1], ops[3])]

    def test_shared_account_bridges_groups_transitively(self):
        def contend(*accounts):
            cells = [bal(a) for a in accounts]
            return footprint(observes=cells, adds=cells)

        ops = [PendingOp(s, s, op("transfer", 1, 1)) for s in range(3)]
        table = {0: contend(0), 1: contend(5), 2: contend(0, 5)}
        planner = SyncPlanner(4, split_sync=True)
        groups = planner.split_groups(ops, FootprintTable(table))
        assert groups == [tuple(ops)]

    def test_unknown_footprint_collapses_to_one_group(self):
        ops = [PendingOp(s, s, op("transfer", 1, 1)) for s in range(3)]
        table = {
            0: footprint(observes=[bal(0)], adds=[bal(0)]),
            1: None,
            2: footprint(observes=[bal(5)], adds=[bal(5)]),
        }
        planner = SyncPlanner(4, split_sync=True)
        groups = planner.split_groups(ops, FootprintTable(table))
        assert groups == [tuple(ops)]

    def test_assign_groups_off_keeps_the_whole_component(self):
        token, classifier, state = erc20_fixture()
        ops = two_account_component()
        planner = SyncPlanner(3, split_sync=False)
        [[whole]] = planner.assign_groups([ops], classifier, state, token)
        # The union bound {0,1,2} ∪ {5} plus participants is 4 > 3: the
        # unsplit component blows the threshold and goes global.
        assert whole.tier == TIER_GLOBAL
        assert whole.ops == tuple(ops)

    def test_split_groups_fit_lanes_the_union_bound_blows(self):
        token, classifier, state = erc20_fixture()
        ops = two_account_component()
        planner = SyncPlanner(3, split_sync=True)
        [[spenders, owner]] = planner.assign_groups(
            [ops], classifier, state, token
        )
        # Sized per group, both fit: account 0's spender bound {0, 1, 2},
        # account 5's own traffic just {5}.
        assert spenders.team == frozenset({0, 1, 2})
        assert spenders.tier == 3
        assert owner.team == frozenset({5})
        assert owner.tier == 1


class TestTieredEscalator:
    def test_threshold_zero_matches_the_global_lane_exactly(self):
        """Bit-compatibility: the tiered path with no team lanes produces
        the same committed order, time, and bill as the raw escalator."""
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
            PendingOp(2, 0, op("transfer", 5, 2)),
        ]
        raw = ConsensusEscalator(seed=9).order(list(ops))
        sync = tiered_escalator(ConsensusEscalator(seed=9), team_threshold=0)
        result = sync.order_round([ops], classifier, state, token)
        assert [o for c in result.components for o in c.ordered] == raw.ordered
        assert result.messages == raw.messages
        assert result.virtual_time == raw.virtual_time
        assert result.team_ops == 0 and result.global_ops == len(ops)

    def test_team_tier_bills_k_squared_not_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
        ]
        sync = tiered_escalator(
            ConsensusEscalator(num_replicas=8, seed=9), team_threshold=4
        )
        result = sync.order_round([ops], classifier, state, token)
        assert result.team_ops == 2 and result.global_ops == 0
        assert result.global_messages == 0
        # 3-replica team, 2 ops in 2 proposal batches (the first proposes
        # alone while the second is in flight): 2 + 2·(3 + 2·9) = 44 —
        # far below the same pattern over 8 replicas (2 + 2·136 = 274).
        assert result.team_messages == 2 + 2 * (3 + 2 * 9)
        assert sync.k_histogram == {3: 1}
        assert result.components[0].team == frozenset({0, 1, 2})

    def test_mixed_round_pays_the_slower_phase_once(self):
        nft_like = [
            PendingOp(10, 0, op("transfer", 1, 1)),
            PendingOp(11, 3, op("transferFrom", 0, 2, 1)),
        ]
        team_comp = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
        ]
        token, classifier, state = erc20_fixture()
        sync = tiered_escalator(ConsensusEscalator(seed=4), team_threshold=3)
        # Force the second component global via an oversized threshold
        # miss: its team is {0, 3} plus spenders {1, 2} = 4 > 3.
        result = sync.order_round(
            [team_comp, nft_like], classifier, state, token
        )
        tiers = sorted(c.tier for c in result.components)
        assert tiers[0] == 3 and math.isinf(tiers[1])
        # The phase is concurrent: it costs the slower lane (plus that
        # lane's trailing quorum traffic), never the sum of both.
        assert result.virtual_time >= max(
            c.completed for c in result.components
        )
        assert (
            result.messages
            == result.team_messages + result.global_messages
        )

    def test_split_sync_folds_groups_back_per_component(self):
        token, classifier, state = erc20_fixture()
        ops = two_account_component()
        sync = tiered_escalator(
            ConsensusEscalator(seed=9), team_threshold=3, split_sync=True
        )
        result = sync.order_round([ops], classifier, state, token)
        # Two concurrent team lanes under the hood, but callers still zip
        # components against the result positionally: one folded order.
        [component] = result.components
        assert [o.seq for o in component.ordered] == [0, 1, 2, 3]
        assert component.tier == 3
        assert component.team == frozenset({0, 1, 2, 5})
        assert result.teams == 2
        assert result.team_sizes == (3, 1)
        assert result.team_ops == 4 and result.global_ops == 0
        # The folded completion is the slower group's lane commit (the
        # phase makespan may add that lane's trailing quorum traffic).
        assert component.completed <= result.virtual_time

    def test_split_sync_off_is_the_historical_whole_component(self):
        token, classifier, state = erc20_fixture()
        ops = two_account_component()
        sync = tiered_escalator(
            ConsensusEscalator(seed=9), team_threshold=3, split_sync=False
        )
        result = sync.order_round([ops], classifier, state, token)
        [component] = result.components
        assert math.isinf(component.tier)  # union bound 4 > threshold 3
        assert [o.seq for o in component.ordered] == [0, 1, 2, 3]
        assert result.global_ops == 4 and result.team_ops == 0
