"""SyncPlanner tier selection and the TieredEscalator's accounting."""

from __future__ import annotations

import math

import pytest

from repro.engine import ConsensusEscalator, OpClassifier, tiered_escalator
from repro.engine.mempool import PendingOp
from repro.errors import EngineError
from repro.objects.asset_transfer import AssetTransferType
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.objects.erc721 import ERC721TokenType
from repro.spec.operation import op
from repro.sync import SyncPlanner, TIER_GLOBAL, component_team


def erc20_fixture():
    token = ERC20TokenType(
        8,
        initial_state=TokenState.create(
            [10] * 8, allowances={(0, 1): 5, (0, 2): 3}
        ),
    )
    return token, OpClassifier(token), token.initial_state()


class TestComponentTeam:
    def test_erc20_team_is_spenders_plus_participants(self):
        token, classifier, state = erc20_fixture()
        # Two enabled spenders of account 0 racing a transfer by its owner.
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        team = component_team(classifier, ops, state, token)
        # Spender bound of account 0 = {0 (owner), 1, 2 (allowances)};
        # participants {0, 1} are already inside.
        assert team == frozenset({0, 1, 2})

    def test_asset_transfer_uses_static_owner_map(self):
        owner_map = [{0, 1, 2}, {3}, {3, 4}]
        asset = AssetTransferType(
            [10, 10, 10], owner_map=owner_map, num_processes=5
        )
        classifier = OpClassifier(asset)
        ops = [
            PendingOp(0, 0, op("transfer", 0, 1, 2)),
            PendingOp(1, 2, op("transfer", 0, 2, 1)),
        ]
        team = component_team(classifier, ops, asset.initial_state(), asset)
        assert team == frozenset({0, 1, 2})

    def test_unboundable_object_returns_none(self):
        nft = ERC721TokenType(4, initial_owners=[0, 1, 2, 3])
        classifier = OpClassifier(nft)
        ops = [
            PendingOp(0, 0, op("transferFrom", 0, 1, 0)),
            PendingOp(1, 2, op("transferFrom", 0, 2, 0)),
        ]
        assert component_team(classifier, ops, nft.initial_state(), nft) is None

    def test_no_state_returns_none(self):
        token, classifier, _ = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        assert component_team(classifier, ops, None, token) is None


class TestSyncPlanner:
    def test_threshold_zero_is_always_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        [assignment] = SyncPlanner(0).assign([ops], classifier, state, token)
        assert assignment.tier == TIER_GLOBAL
        assert assignment.team is None

    def test_small_team_gets_a_lane_large_goes_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 0, op("transfer", 4, 2)),
        ]
        [small] = SyncPlanner(3).assign([ops], classifier, state, token)
        assert small.tier == 3
        assert small.team == frozenset({0, 1, 2})
        [over] = SyncPlanner(2).assign([ops], classifier, state, token)
        assert over.tier == TIER_GLOBAL

    def test_decide_sizes_precomputed_teams(self):
        planner = SyncPlanner(4)
        assert planner.decide(frozenset({1, 2})).tier == 2
        assert planner.decide(frozenset(range(9))).tier == TIER_GLOBAL
        assert planner.decide(None).tier == TIER_GLOBAL

    def test_empty_component_rejected(self):
        token, classifier, state = erc20_fixture()
        with pytest.raises(EngineError):
            SyncPlanner(2).assign([[]], classifier, state, token)

    def test_negative_threshold_rejected(self):
        with pytest.raises(EngineError):
            SyncPlanner(-1)


class TestTieredEscalator:
    def test_threshold_zero_matches_the_global_lane_exactly(self):
        """Bit-compatibility: the tiered path with no team lanes produces
        the same committed order, time, and bill as the raw escalator."""
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
            PendingOp(2, 0, op("transfer", 5, 2)),
        ]
        raw = ConsensusEscalator(seed=9).order(list(ops))
        sync = tiered_escalator(ConsensusEscalator(seed=9), team_threshold=0)
        result = sync.order_round([ops], classifier, state, token)
        assert [o for c in result.components for o in c.ordered] == raw.ordered
        assert result.messages == raw.messages
        assert result.virtual_time == raw.virtual_time
        assert result.team_ops == 0 and result.global_ops == len(ops)

    def test_team_tier_bills_k_squared_not_global(self):
        token, classifier, state = erc20_fixture()
        ops = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
        ]
        sync = tiered_escalator(
            ConsensusEscalator(num_replicas=8, seed=9), team_threshold=4
        )
        result = sync.order_round([ops], classifier, state, token)
        assert result.team_ops == 2 and result.global_ops == 0
        assert result.global_messages == 0
        # 3-replica team, 2 ops in 2 proposal batches (the first proposes
        # alone while the second is in flight): 2 + 2·(3 + 2·9) = 44 —
        # far below the same pattern over 8 replicas (2 + 2·136 = 274).
        assert result.team_messages == 2 + 2 * (3 + 2 * 9)
        assert sync.k_histogram == {3: 1}
        assert result.components[0].team == frozenset({0, 1, 2})

    def test_mixed_round_pays_the_slower_phase_once(self):
        nft_like = [
            PendingOp(10, 0, op("transfer", 1, 1)),
            PendingOp(11, 3, op("transferFrom", 0, 2, 1)),
        ]
        team_comp = [
            PendingOp(0, 1, op("transferFrom", 0, 3, 2)),
            PendingOp(1, 2, op("transferFrom", 0, 4, 1)),
        ]
        token, classifier, state = erc20_fixture()
        sync = tiered_escalator(ConsensusEscalator(seed=4), team_threshold=3)
        # Force the second component global via an oversized threshold
        # miss: its team is {0, 3} plus spenders {1, 2} = 4 > 3.
        result = sync.order_round(
            [team_comp, nft_like], classifier, state, token
        )
        tiers = sorted(c.tier for c in result.components)
        assert tiers[0] == 3 and math.isinf(tiers[1])
        # The phase is concurrent: it costs the slower lane (plus that
        # lane's trailing quorum traffic), never the sum of both.
        assert result.virtual_time >= max(
            c.completed for c in result.components
        )
        assert (
            result.messages
            == result.team_messages + result.global_messages
        )
