"""Serial equivalence across tier assignments (the ISSUE's property suite).

The tiered sync layer must be *transparent*: for any ``team_threshold``
(including 0 = always-global and huge = team-everything), any team
schedule, any window size, and any workload, the engine's and cluster's
final state and every response equal a plain sequential execution of the
workload in submission order.  Thresholds move the message bill between
tiers — they must never move the outcome.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor
from repro.cluster import TokenCluster
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    APPROVAL_HEAVY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
)

THRESHOLDS = (0, 1, 2, 4, 8, 64)


def serial_reference(object_type, items):
    return object_type.run([(item.pid, item.operation) for item in items])


def approval_items(n, seed, count, spender_pool=4):
    return TokenWorkloadGenerator(
        n,
        seed=seed,
        mix=APPROVAL_HEAVY_MIX,
        spender_pool=spender_pool,
    ).generate(count)


class TestEngineTierEquivalence:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_state_and_responses_match_spec(self, threshold):
        token = ERC20TokenType(16, total_supply=320)
        items = approval_items(16, seed=71, count=300)
        ref_state, ref_responses = serial_reference(token, items)
        engine = BatchExecutor(
            ERC20TokenType(16, total_supply=320),
            num_lanes=4,
            window=16,
            team_threshold=threshold,
        )
        state, responses, stats = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses
        assert stats.team_ops + stats.global_ops == stats.escalated_ops

    def test_outcome_invariant_across_thresholds(self):
        items = approval_items(12, seed=29, count=250)
        outcomes = []
        for threshold in THRESHOLDS:
            engine = BatchExecutor(
                ERC20TokenType(12, total_supply=240),
                num_lanes=4,
                window=16,
                team_threshold=threshold,
            )
            state, responses, _ = engine.run_workload(items)
            outcomes.append((state, responses))
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        threshold=st.sampled_from(THRESHOLDS),
        window=st.sampled_from([4, 16, 48]),
        pool=st.sampled_from([0, 3, 4]),
    )
    def test_hypothesis_sweep(self, seed, threshold, window, pool):
        token = ERC20TokenType(16, total_supply=160)
        items = TokenWorkloadGenerator(
            16,
            seed=seed,
            mix=SPENDER_HEAVY_MIX,
            spender_pool=pool,
            hotspot_fraction=0.4,
            hotspot_accounts=2,
        ).generate(120)
        ref_state, ref_responses = serial_reference(token, items)
        engine = BatchExecutor(
            ERC20TokenType(16, total_supply=160),
            num_lanes=4,
            window=window,
            team_threshold=threshold,
        )
        state, responses, _ = engine.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    def test_validated_run_with_teams_on(self):
        """Oracle validation stays green with team lanes active."""
        items = approval_items(10, seed=13, count=200)
        engine = BatchExecutor(
            ERC20TokenType(10, total_supply=200),
            num_lanes=4,
            window=16,
            validate=True,
            team_threshold=4,
        )
        _, _, stats = engine.run_workload(items)
        assert stats.ops_executed == 200

    def test_determinism_per_configuration(self):
        items = approval_items(12, seed=5, count=200)
        runs = [
            BatchExecutor(
                ERC20TokenType(12, total_supply=240),
                num_lanes=4,
                window=16,
                seed=7,
                team_threshold=4,
            ).run_workload(items)
            for _ in range(2)
        ]
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        assert runs[0][2].as_dict() == runs[1][2].as_dict()


class TestClusterTierEquivalence:
    @pytest.mark.parametrize("threshold", (0, 2, 4, 16))
    @pytest.mark.parametrize("nodes", (1, 3, 5))
    def test_state_and_responses_match_spec(self, threshold, nodes):
        token = ERC20TokenType(16, total_supply=320)
        items = approval_items(16, seed=71, count=200)
        ref_state, ref_responses = serial_reference(token, items)
        cluster = TokenCluster(
            ERC20TokenType(16, total_supply=320),
            num_nodes=nodes,
            lanes_per_node=4,
            window=16,
            team_threshold=threshold,
        )
        state, responses, stats = cluster.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses
        assert stats.team_ops + stats.global_ops == stats.escalated_ops

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        threshold=st.sampled_from((0, 2, 4, 16)),
        nodes=st.sampled_from((2, 4)),
        cooldown=st.sampled_from((0, 2)),
    )
    def test_hypothesis_sweep(self, seed, threshold, nodes, cooldown):
        """Any threshold × any node count × any cooldown: the knobs move
        messages and leases, never the outcome."""
        token = ERC20TokenType(12, total_supply=240)
        items = TokenWorkloadGenerator(
            12,
            seed=seed,
            mix=SPENDER_HEAVY_MIX,
            spender_pool=4,
        ).generate(120)
        ref_state, ref_responses = serial_reference(token, items)
        cluster = TokenCluster(
            ERC20TokenType(12, total_supply=240),
            num_nodes=nodes,
            lanes_per_node=4,
            window=16,
            seed=seed,
            team_threshold=threshold,
            lease_cooldown=cooldown,
        )
        state, responses, _ = cluster.run_workload(items)
        assert state == ref_state
        assert responses == ref_responses

    def test_tiered_cluster_pays_less_than_global(self):
        items = approval_items(24, seed=7, count=400)
        stats = {}
        for threshold in (0, 4):
            cluster = TokenCluster(
                ERC20TokenType(24, total_supply=2400),
                num_nodes=4,
                lanes_per_node=4,
                window=16,
                seed=7,
                team_threshold=threshold,
            )
            _, _, stats[threshold] = cluster.run_workload(items)
        assert stats[4].team_ops > 0
        assert (
            stats[4].escalation_messages < stats[0].escalation_messages
        )


class TestTierStatsSurface:
    """The per-tier accounting (and the backpressure counters) must be
    part of the JSON summaries the benchmarks publish."""

    def test_engine_summary_keys(self):
        engine = BatchExecutor(
            ERC20TokenType(8, total_supply=80), num_lanes=2, window=8
        )
        engine.run_workload(approval_items(8, seed=3, count=50))
        summary = engine.stats.as_dict()
        for key in (
            "team_ops",
            "global_ops",
            "team_messages",
            "global_messages",
            "k_histogram",
            "mean_team_size",
            "max_concurrent_teams",
            "rejected_ops",
        ):
            assert key in summary

    def test_cluster_summary_keys(self):
        cluster = TokenCluster(
            ERC20TokenType(8, total_supply=80), num_nodes=2, window=8
        )
        cluster.run_workload(approval_items(8, seed=3, count=50))
        summary = cluster.stats.as_dict()
        for key in (
            "team_ops",
            "global_ops",
            "team_messages",
            "global_messages",
            "team_k_histogram",
            "mean_team_size",
            "max_concurrent_teams",
            "dropped_ops",
            "lease_cooldown_skips",
        ):
            assert key in summary
        for bill in summary["node_bills"]:
            assert "sync_wait_time" in bill
