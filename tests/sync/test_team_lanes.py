"""TeamLane pool: independent k-consensus instances on one simulator."""

from __future__ import annotations

import math

import pytest

from repro.engine.mempool import PendingOp
from repro.errors import NetworkError
from repro.net import ConstantLatency, TeamLanePool
from repro.spec.operation import op


def batch(start: int, count: int, pid: int = 0) -> list[PendingOp]:
    return [
        PendingOp(start + i, pid, op("transfer", 1, 1)) for i in range(count)
    ]


def quadratic_bill(ops: int, k: int, max_batch: int = 64) -> int:
    """The three-phase bill for one lane of ``k`` replicas (mirrors
    ``tests/engine/test_escalation.py``'s closed form)."""
    batches = 1 if ops == 1 else 1 + math.ceil((ops - 1) / max_batch)
    return ops + batches * (k + 2 * k * k)


class TestTeamLane:
    def test_single_lane_orders_in_submission_order(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=3)
        ops = batch(0, 5)
        round_result = pool.order([(frozenset({1, 2, 3}), ops)])
        assert len(round_result.orders) == 1
        assert list(round_result.orders[0].ordered) == ops
        assert round_result.orders[0].team == frozenset({1, 2, 3})
        assert round_result.makespan > 0

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_message_bill_is_quadratic_in_team_size(self, k):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=5)
        ops = batch(0, 6)
        round_result = pool.order([(frozenset(range(k)), ops)])
        assert round_result.messages == quadratic_bill(6, k)

    def test_lane_reuse_per_team(self):
        pool = TeamLanePool(seed=1)
        lane = pool.lane({5, 9})
        assert pool.lane(frozenset({9, 5})) is lane
        assert pool.lane({5, 9, 11}) is not lane
        assert pool.lanes_created == 2

    def test_empty_round_is_free(self):
        pool = TeamLanePool(seed=0)
        round_result = pool.order([])
        assert round_result.orders == ()
        assert round_result.makespan == 0.0
        assert round_result.messages == 0

    def test_empty_team_rejected(self):
        pool = TeamLanePool(seed=0)
        with pytest.raises(NetworkError):
            pool.lane(frozenset())


class TestConcurrency:
    def test_disjoint_teams_run_concurrently(self):
        """Two teams ordered together cost (about) the slower team, not
        the sum — the makespan argument for many independent instances."""
        solo_costs = []
        for seed in (11, 12):
            pool = TeamLanePool(latency=ConstantLatency(1.0), seed=seed)
            solo_costs.append(
                pool.order([(frozenset({0, 1, 2}), batch(0, 4))]).makespan
            )
        together = TeamLanePool(latency=ConstantLatency(1.0), seed=11)
        round_result = together.order(
            [
                (frozenset({0, 1, 2}), batch(0, 4)),
                (frozenset({3, 4, 5}), batch(10, 4)),
            ]
        )
        assert round_result.teams == 2
        assert round_result.makespan < sum(solo_costs)
        assert together.max_concurrent == 2

    def test_per_batch_orders_stay_aligned(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=2)
        first, second = batch(0, 3), batch(100, 2)
        round_result = pool.order(
            [(frozenset({0, 1}), first), (frozenset({7, 8, 9}), second)]
        )
        assert list(round_result.orders[0].ordered) == first
        assert list(round_result.orders[1].ordered) == second

    def test_shared_team_batches_serialize_on_one_lane(self):
        """Two components naming the same team share a lane: both orders
        are preserved and the lane's bill is charged exactly once."""
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=4)
        first, second = batch(0, 2), batch(50, 3)
        round_result = pool.order(
            [(frozenset({0, 1}), first), (frozenset({1, 0}), second)]
        )
        assert pool.lanes_created == 1
        assert round_result.teams == 1  # one lane, even with two batches
        assert list(round_result.orders[0].ordered) == first
        assert list(round_result.orders[1].ordered) == second
        assert round_result.orders[1].messages == 0  # charged on the first
        assert round_result.messages == round_result.orders[0].messages

    def test_clock_is_cumulative_across_rounds(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=6)
        pool.order([(frozenset({0, 1}), batch(0, 2))])
        t1 = pool.simulator.now
        pool.order([(frozenset({0, 1}), batch(10, 2))])
        assert pool.simulator.now > t1
        assert pool.rounds == 2


class TestIdleLaneGC:
    """Regression: a long run over shifting approval patterns must not
    accumulate one live replica group per distinct team it ever saw."""

    def test_idle_lane_collected_after_ttl(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=7, idle_ttl=2)
        pool.order([(frozenset({0, 1}), batch(0, 2))])
        # Two rounds on a different team: {0, 1} goes idle past the TTL.
        pool.order([(frozenset({2, 3}), batch(10, 2))])
        assert pool.live_lanes == 2
        pool.order([(frozenset({2, 3}), batch(20, 2))])
        assert pool.live_lanes == 1
        assert pool.lanes_gcd == 1
        assert pool.lanes_created == 2  # cumulative, GC does not decrement

    def test_shifting_teams_bound_live_lanes(self):
        """Distinct team per round: without GC the pool holds one lane per
        round ever seen; with a TTL the live set stays bounded by it."""
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=8, idle_ttl=3)
        for i in range(12):
            pool.order([(frozenset({2 * i, 2 * i + 1}), batch(10 * i, 2))])
        assert pool.lanes_created == 12
        assert pool.live_lanes <= 3
        assert pool.lanes_gcd == 12 - pool.live_lanes

    def test_collected_lane_is_reprovisioned_and_reordered_correctly(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=9, idle_ttl=1)
        team = frozenset({4, 5})
        pool.order([(team, batch(0, 3))])
        pool.order([(frozenset({6, 7}), batch(10, 2))])  # {4,5} collected
        assert pool.live_lanes == 1
        ops = batch(20, 4)
        round_result = pool.order([(team, ops)])
        assert list(round_result.orders[0].ordered) == ops
        assert pool.lanes_created == 3

    def test_reuse_within_ttl_keeps_the_lane(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=10, idle_ttl=2)
        team = frozenset({0, 1})
        lane = pool.lane(team)
        for i in range(6):
            pool.order([(team, batch(10 * i, 1))])
        assert pool.lane(team) is lane
        assert pool.lanes_gcd == 0

    def test_ttl_validation(self):
        with pytest.raises(NetworkError):
            TeamLanePool(idle_ttl=0)

    def test_default_keeps_lanes_forever(self):
        pool = TeamLanePool(latency=ConstantLatency(1.0), seed=11)
        for i in range(8):
            pool.order([(frozenset({2 * i, 2 * i + 1}), batch(10 * i, 1))])
        assert pool.live_lanes == 8
        assert pool.lanes_gcd == 0

    def test_tiered_escalator_exposes_lane_ttl(self):
        from repro.engine.escalation import tiered_escalator

        sync = tiered_escalator(team_threshold=3, lane_ttl=4, seed=1)
        assert sync.pool.idle_ttl == 4
