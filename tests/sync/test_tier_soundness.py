"""Soundness of tier sizing: the static bound dominates the oracle.

The planner sizes teams from :func:`repro.sync.bounds.spender_bound`, a
*static* estimate in Algorithm 2's sense — for ERC20 it reads the
allowance registers only (``potential_spenders``), never the balances.
Tier choice is sound iff that estimate is a **superset** of the semantic
enabled-spender oracle ``σ_q`` (Eq. 10) at every state: a team that
contains every enabled spender is a k'-consensus group with ``k' ≥ k(q)``,
so the team lane is always strong enough for the race it sequences.

These property tests machine-check the superset relation on random
states, and that the component-level team inherits it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spenders import enabled_spenders, max_spenders
from repro.engine import OpClassifier
from repro.engine.mempool import PendingOp
from repro.objects.erc20 import ERC20TokenType, TokenState
from repro.spec.operation import op
from repro.sync import component_team, spender_bound

ACCOUNTS = 6


@st.composite
def token_states(draw):
    balances = draw(
        st.lists(
            st.integers(0, 20), min_size=ACCOUNTS, max_size=ACCOUNTS
        )
    )
    cells = draw(
        st.dictionaries(
            st.tuples(
                st.integers(0, ACCOUNTS - 1), st.integers(0, ACCOUNTS - 1)
            ),
            st.integers(0, 10),
            max_size=12,
        )
    )
    return TokenState.create(balances, allowances=cells)


class TestStaticBoundIsSuperset:
    @settings(max_examples=200, deadline=None)
    @given(state=token_states())
    def test_bound_contains_oracle_on_every_account(self, state):
        token = ERC20TokenType(ACCOUNTS, initial_state=state)
        for account in range(ACCOUNTS):
            bound = spender_bound(token, state, account)
            oracle = enabled_spenders(state, account)
            assert bound is not None
            assert oracle <= bound, (
                f"account {account}: bound {sorted(bound)} misses "
                f"enabled spenders {sorted(oracle - bound)}"
            )

    @settings(max_examples=100, deadline=None)
    @given(state=token_states())
    def test_bound_size_dominates_the_consensus_number(self, state):
        """``max_a |bound(a)| >= max_a |σ_q(a)| = k(q)`` — a team sized by
        the bound is never weaker than the state's consensus number."""
        token = ERC20TokenType(ACCOUNTS, initial_state=state)
        largest_bound = max(
            len(spender_bound(token, state, account))
            for account in range(ACCOUNTS)
        )
        assert largest_bound >= max_spenders(state)

    @settings(max_examples=100, deadline=None)
    @given(
        state=token_states(),
        source=st.integers(0, ACCOUNTS - 1),
        spender=st.integers(0, ACCOUNTS - 1),
        rival=st.integers(0, ACCOUNTS - 1),
    )
    def test_component_team_contains_every_enabled_spender(
        self, state, source, spender, rival
    ):
        """A contended component's team covers σ_q of every account it
        contends on, plus the participants themselves."""
        token = ERC20TokenType(ACCOUNTS, initial_state=state)
        classifier = OpClassifier(token)
        ops = [
            PendingOp(0, spender, op("transferFrom", source, rival, 1)),
            PendingOp(1, source, op("transfer", rival, 1)),
        ]
        team = component_team(classifier, ops, state, token)
        assert team is not None
        assert enabled_spenders(state, source) <= team
        assert {spender, source} <= team
