"""Open-loop arrivals: generators, the stream driver, and its identity.

The load-bearing contract is the last one: a stream whose arrivals all
land at virtual time zero is the closed loop in disguise, so driving it
must reproduce ``run_workload`` — state, responses, and stats — bit for
bit on every layer the driver supports.
"""

from __future__ import annotations

import pytest

from repro.cluster import TokenCluster
from repro.engine import BatchExecutor, PipelinedExecutor
from repro.errors import StreamError
from repro.obs import TraceRecorder
from repro.objects.erc20 import ERC20TokenType
from repro.workloads import (
    Arrival,
    StreamDriver,
    TokenWorkloadGenerator,
    WorkloadMix,
    onoff_arrivals,
    poisson_arrivals,
)

ACCOUNTS = 32
OPS = 160


def make_items(ops: int = OPS):
    return TokenWorkloadGenerator(
        ACCOUNTS, seed=13, mix=WorkloadMix()
    ).generate(ops)


def make_token():
    return ERC20TokenType(ACCOUNTS, total_supply=100 * ACCOUNTS)


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


def test_poisson_arrivals_are_seeded_sorted_and_complete():
    items = make_items(64)
    first = poisson_arrivals(items, rate=2.0, seed=5)
    again = poisson_arrivals(items, rate=2.0, seed=5)
    other = poisson_arrivals(items, rate=2.0, seed=6)
    assert first == again
    assert first != other
    assert [a.item for a in first] == items
    times = [a.time for a in first]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_poisson_mean_gap_tracks_the_rate():
    items = make_items(400)
    arrivals = poisson_arrivals(items, rate=4.0, seed=1)
    mean_gap = arrivals[-1].time / len(arrivals)
    assert mean_gap == pytest.approx(1 / 4.0, rel=0.25)


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(StreamError):
        poisson_arrivals(make_items(4), rate=0.0)


def test_onoff_arrivals_respect_the_burst_windows():
    items = make_items(200)
    burst_time, idle_time = 5.0, 20.0
    arrivals = onoff_arrivals(
        items,
        burst_rate=8.0,
        burst_time=burst_time,
        idle_time=idle_time,
        seed=3,
    )
    period = burst_time + idle_time
    assert [a.item for a in arrivals] == items
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    for t in times:
        assert t % period < burst_time, f"arrival {t} inside a silence"


def test_onoff_rejects_bad_shape():
    with pytest.raises(StreamError):
        onoff_arrivals(make_items(4), burst_rate=0, burst_time=1, idle_time=1)
    with pytest.raises(StreamError):
        onoff_arrivals(make_items(4), burst_rate=1, burst_time=0, idle_time=1)
    with pytest.raises(StreamError):
        onoff_arrivals(
            make_items(4), burst_rate=1, burst_time=1, idle_time=-1
        )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

TARGETS = [
    (
        "engine",
        lambda tracer, capacity=None: BatchExecutor(
            make_token(),
            num_lanes=4,
            seed=13,
            mempool_capacity=capacity,
            tracer=tracer,
        ),
    ),
    (
        "pipelined",
        lambda tracer, capacity=None: PipelinedExecutor(
            make_token(),
            num_lanes=4,
            pipeline_depth=3,
            seed=13,
            mempool_capacity=capacity,
            tracer=tracer,
        ),
    ),
    (
        "cluster",
        lambda tracer, capacity=None: TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=13,
            mempool_capacity=capacity,
            tracer=tracer,
        ),
    ),
    (
        "cluster_pipelined",
        lambda tracer, capacity=None: TokenCluster(
            make_token(),
            num_nodes=3,
            lanes_per_node=4,
            seed=13,
            pipeline_depth=3,
            mempool_capacity=capacity,
            tracer=tracer,
        ),
    ),
]
TARGET_IDS = [label for label, _ in TARGETS]


def test_driver_requires_a_tracer():
    with pytest.raises(StreamError):
        StreamDriver(BatchExecutor(make_token()), [])


def test_driver_rejects_negative_arrival_times():
    item = make_items(1)[0]
    with pytest.raises(StreamError):
        StreamDriver(
            BatchExecutor(make_token(), tracer=TraceRecorder()),
            [Arrival(time=-1.0, item=item)],
        )


@pytest.mark.parametrize("label,build", TARGETS, ids=TARGET_IDS)
def test_arrivals_at_time_zero_reproduce_the_closed_loop(label, build):
    """All-at-zero arrivals are run_workload in disguise — same state,
    same responses, same stats, same makespan, bit for bit."""
    items = make_items()
    closed_state, closed_responses, closed_stats = build(
        TraceRecorder()
    ).run_workload(items)

    target = build(TraceRecorder())
    arrivals = [Arrival(time=0.0, item=item) for item in items]
    report = StreamDriver(target, arrivals).run()

    assert report.offered == len(items)
    assert len(report.admitted) == len(items)
    assert report.dropped == 0
    assert target.state == closed_state
    assert target.responses_in_order() == closed_responses
    assert report.stats.as_dict() == closed_stats.as_dict()


@pytest.mark.parametrize("label,build", TARGETS, ids=TARGET_IDS)
def test_driven_run_commits_everything_and_stamps_latency(label, build):
    target = build(TraceRecorder())
    arrivals = poisson_arrivals(make_items(), rate=1.5, seed=13)
    report = StreamDriver(target, arrivals).run()

    assert report.dropped == 0
    assert report.makespan >= arrivals[-1].time
    metrics = target.tracer.metrics
    assert metrics.counter("ops_committed").value == len(report.admitted)
    latency = metrics.histogram("op_latency")
    assert latency.count == len(report.admitted)
    assert latency.min >= 0.0
    # Commit happens at or after arrival, so the mean latency is real
    # queueing + execution time, not a clock artifact.
    assert latency.mean > 0.0


@pytest.mark.parametrize("label,build", TARGETS, ids=TARGET_IDS)
def test_bounded_mempool_drops_stay_open_loop(label, build):
    """A bounded mempool sheds the burst's tail: the driver counts the
    drops and keeps going — it never blocks waiting for room."""
    capacity = 16
    target = build(TraceRecorder(), capacity=capacity)
    items = make_items(3 * capacity)
    arrivals = [Arrival(time=0.0, item=item) for item in items]
    report = StreamDriver(target, arrivals).run()

    assert report.dropped == len(items) - capacity
    assert len(report.admitted) == capacity
    assert (
        target.tracer.metrics.counter("ops_committed").value == capacity
    )


def test_late_arrivals_idle_the_clock_forward():
    """A lone arrival far in the future: the driver advances the idle
    clock to it rather than spinning, and latency is measured from the
    arrival instant, not from zero."""
    tracer = TraceRecorder()
    engine = BatchExecutor(make_token(), num_lanes=2, tracer=tracer)
    item = make_items(1)[0]
    report = StreamDriver(
        engine, [Arrival(time=100.0, item=item)]
    ).run()
    assert report.makespan >= 100.0
    latency = tracer.metrics.histogram("op_latency")
    assert latency.count == 1
    assert latency.max < 100.0  # measured from arrival, not from zero


def test_unsorted_arrivals_are_released_in_time_order():
    tracer = TraceRecorder()
    engine = BatchExecutor(make_token(), num_lanes=2, tracer=tracer)
    items = make_items(8)
    arrivals = [
        Arrival(time=float(8 - index), item=item)
        for index, item in enumerate(items)
    ]
    report = StreamDriver(engine, arrivals).run()
    assert len(report.admitted) == len(items)
    # The first-submitted op (lowest seq) is the earliest arrival — the
    # reversed construction order did not leak into admission order.
    earliest = min(arrivals, key=lambda a: a.time)
    assert report.admitted[0].operation == earliest.item.operation
