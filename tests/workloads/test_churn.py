"""Churn schedule builders: rolling cadences and migrating hot-spots."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.workloads import crash_cadence, flash_crowd


def test_cadence_rolls_over_the_nodes():
    schedule = crash_cadence(3, start=10.0, spacing=5.0, downtime=2.0)
    assert schedule == (
        (0, 10.0, 12.0),
        (1, 15.0, 17.0),
        (2, 20.0, 22.0),
    )


def test_permanent_cadence_leaves_a_survivor():
    schedule = crash_cadence(3, start=0.0, spacing=1.0, downtime=None)
    assert len(schedule) == 2  # capped at num_nodes - 1
    assert all(restart is None for _, _, restart in schedule)
    with pytest.raises(InvalidArgumentError):
        crash_cadence(3, start=0.0, spacing=1.0, downtime=None, crashes=3)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 1, "start": 0.0, "spacing": 1.0, "downtime": 1.0},
        {"num_nodes": 3, "start": -1.0, "spacing": 1.0, "downtime": 1.0},
        {"num_nodes": 3, "start": 0.0, "spacing": 0.0, "downtime": 1.0},
        {"num_nodes": 3, "start": 0.0, "spacing": 1.0, "downtime": 0.0},
        {
            "num_nodes": 3,
            "start": 0.0,
            "spacing": 1.0,
            "downtime": 1.0,
            "crashes": 0,
        },
    ],
)
def test_cadence_rejects_malformed_plans(kwargs):
    with pytest.raises(InvalidArgumentError):
        crash_cadence(**kwargs)


def test_flash_crowd_is_deterministic_per_seed():
    first = flash_crowd(64, 200, seed=9)
    assert first == flash_crowd(64, 200, seed=9)
    assert first != flash_crowd(64, 200, seed=10)
    assert len(first) == 200
    assert all(item.operation.name == "transfer" for item in first)


def test_flash_crowd_hotspot_migrates_between_phases():
    items = flash_crowd(
        100, 400, phases=4, hotspot_accounts=4, hotspot_fraction=1.0, seed=1
    )
    per_phase = [items[i * 100 : (i + 1) * 100] for i in range(4)]
    for phase, chunk in enumerate(per_phase):
        window = {(phase * 25 + k) % 100 for k in range(4)}
        assert {item.pid for item in chunk} <= window


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_accounts": 0, "count": 10},
        {"num_accounts": 10, "count": 0},
        {"num_accounts": 10, "count": 5, "phases": 6},
        {"num_accounts": 10, "count": 5, "hotspot_fraction": 1.5},
        {"num_accounts": 10, "count": 5, "hotspot_accounts": 11},
    ],
)
def test_flash_crowd_rejects_malformed_plans(kwargs):
    with pytest.raises(InvalidArgumentError):
        flash_crowd(**kwargs)
