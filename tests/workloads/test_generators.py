"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType
from repro.workloads.generators import (
    EXAMPLE1_BALANCES,
    EXAMPLE1_RESPONSES,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadMix,
    example1_trace,
    partition_by_process,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = TokenWorkloadGenerator(4, seed=1).generate(50)
        b = TokenWorkloadGenerator(4, seed=1).generate(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = TokenWorkloadGenerator(4, seed=1).generate(50)
        b = TokenWorkloadGenerator(4, seed=2).generate(50)
        assert a != b

    def test_items_valid_against_spec(self):
        token = ERC20TokenType(4, total_supply=30)
        items = TokenWorkloadGenerator(4, seed=3).generate(200)
        # Every generated item must be a domain-valid invocation.
        state = token.initial_state()
        for item in items:
            state, _ = token.apply(state, item.pid, item.operation)
        assert state.total_supply == 30

    def test_mix_respected(self):
        generator = TokenWorkloadGenerator(4, seed=4, mix=OWNER_ONLY_MIX)
        items = generator.generate(300)
        names = {item.operation.name for item in items}
        assert "transferFrom" not in names
        assert "approve" not in names

    def test_spender_heavy_mix_contains_spender_traffic(self):
        generator = TokenWorkloadGenerator(4, seed=4, mix=SPENDER_HEAVY_MIX)
        items = generator.generate(300)
        names = [item.operation.name for item in items]
        assert names.count("transferFrom") > 50

    def test_zipf_skew_concentrates_accounts(self):
        uniform = TokenWorkloadGenerator(10, seed=5)
        skewed = TokenWorkloadGenerator(10, seed=5, zipf_s=1.5)
        from collections import Counter

        uniform_counts = Counter(i.pid for i in uniform.generate(1000))
        skewed_counts = Counter(i.pid for i in skewed.generate(1000))
        assert skewed_counts[0] > 2 * uniform_counts[0]

    def test_stream_is_lazy(self):
        stream = TokenWorkloadGenerator(3, seed=0).stream()
        first = next(stream)
        assert 0 <= first.pid < 3

    def test_hotspot_skew_concentrates_accounts(self):
        from collections import Counter

        uniform = TokenWorkloadGenerator(20, seed=9)
        hot = TokenWorkloadGenerator(
            20, seed=9, hotspot_fraction=0.8, hotspot_accounts=2
        )
        uniform_counts = Counter(i.pid for i in uniform.generate(1000))
        hot_counts = Counter(i.pid for i in hot.generate(1000))
        hot_share = (hot_counts[0] + hot_counts[1]) / 1000
        uniform_share = (uniform_counts[0] + uniform_counts[1]) / 1000
        assert hot_share > 0.7
        assert uniform_share < 0.3

    def test_hotspot_is_deterministic_per_seed(self):
        make = lambda: TokenWorkloadGenerator(  # noqa: E731
            16, seed=42, hotspot_fraction=0.5, hotspot_accounts=3, zipf_s=1.1
        )
        assert make().generate(200) == make().generate(200)

    def test_hotspot_composes_with_zipf(self):
        """The overlay draws hot traffic; the Zipf base covers the rest."""
        from collections import Counter

        generator = TokenWorkloadGenerator(
            30, seed=3, zipf_s=1.5, hotspot_fraction=0.5, hotspot_accounts=1
        )
        counts = Counter(i.pid for i in generator.generate(2000))
        assert counts[0] > 1000  # hot overlay plus Zipf head
        assert len(counts) > 5  # tail still covered

    def test_hotspot_validation(self):
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_fraction=1.5)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_fraction=-0.1)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_accounts=0)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_accounts=5)

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(0)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(2, max_value=-1)
        with pytest.raises(InvalidArgumentError):
            WorkloadMix(transfer=-1).weights()
        with pytest.raises(InvalidArgumentError):
            WorkloadMix(
                transfer=0,
                transfer_from=0,
                approve=0,
                balance_of=0,
                allowance=0,
                total_supply=0,
            ).weights()


class TestExample1:
    def test_trace_matches_paper(self):
        token = ERC20TokenType(3, total_supply=10)
        state = token.initial_state()
        for item, expected_response, expected_balances in zip(
            example1_trace(), EXAMPLE1_RESPONSES, EXAMPLE1_BALANCES
        ):
            state, response = token.apply(state, item.pid, item.operation)
            assert response == expected_response
            assert state.balances == expected_balances
        assert state.allowance(1, 2) == 4


class TestPartition:
    def test_partition_preserves_order(self):
        items = TokenWorkloadGenerator(3, seed=6).generate(30)
        buckets = partition_by_process(items, 3)
        assert sum(len(bucket) for bucket in buckets) == 30
        for pid, bucket in enumerate(buckets):
            assert all(item.pid == pid for item in bucket)

    def test_out_of_range_pid_rejected(self):
        items = TokenWorkloadGenerator(5, seed=0).generate(10)
        with pytest.raises(InvalidArgumentError):
            partition_by_process(items, 2)


class TestNFTGenerator:
    def test_deterministic_and_domain_valid(self):
        from repro.objects.erc721 import ERC721TokenType
        from repro.workloads.generators import NFTWorkloadGenerator

        a = NFTWorkloadGenerator(4, num_tokens=8, seed=7).generate(100)
        b = NFTWorkloadGenerator(4, num_tokens=8, seed=7).generate(100)
        assert a == b
        token = ERC721TokenType(4, initial_owners=[t % 4 for t in range(8)])
        state = token.initial_state()
        for item in a:
            state, _ = token.apply(state, item.pid, item.operation)

    def test_token_skew_concentrates_hot_tokens(self):
        from collections import Counter

        from repro.workloads.generators import NFTWorkloadGenerator

        def touched_tokens(generator):
            counts = Counter()
            for item in generator.generate(800):
                if item.operation.name in ("transferFrom", "ownerOf"):
                    counts[item.operation.args[-1 if item.operation.name == "transferFrom" else 0]] += 1
            return counts

        uniform = touched_tokens(NFTWorkloadGenerator(4, num_tokens=20, seed=3))
        hot = touched_tokens(
            NFTWorkloadGenerator(
                4, num_tokens=20, seed=3, hotspot_fraction=0.7, hotspot_tokens=2
            )
        )
        assert hot[0] + hot[1] > uniform[0] + uniform[1]

    def test_rejects_bad_config(self):
        from repro.workloads.generators import NFTWorkloadGenerator

        with pytest.raises(InvalidArgumentError):
            NFTWorkloadGenerator(0, num_tokens=4)
        with pytest.raises(InvalidArgumentError):
            NFTWorkloadGenerator(4, num_tokens=4, hotspot_fraction=1.5)
        with pytest.raises(InvalidArgumentError):
            NFTWorkloadGenerator(4, num_tokens=4, hotspot_tokens=9)


class TestAssetTransferGenerator:
    def test_deterministic_and_domain_valid(self):
        from repro.objects.asset_transfer import AssetTransferType
        from repro.workloads.generators import AssetTransferWorkloadGenerator

        a = AssetTransferWorkloadGenerator(6, num_processes=6, seed=5).generate(
            80
        )
        b = AssetTransferWorkloadGenerator(6, num_processes=6, seed=5).generate(
            80
        )
        assert a == b
        asset = AssetTransferType([30] * 6, num_processes=6)
        state = asset.initial_state()
        for item in a:
            state, _ = asset.apply(state, item.pid, item.operation)
        assert state.total_supply == 180

    def test_zipf_skew_exposed(self):
        from collections import Counter

        from repro.workloads.generators import AssetTransferWorkloadGenerator

        def source_counts(generator):
            counts = Counter()
            for item in generator.generate(600):
                if item.operation.name == "transfer":
                    counts[item.operation.args[0]] += 1
            return counts

        uniform = source_counts(
            AssetTransferWorkloadGenerator(10, num_processes=10, seed=2)
        )
        skewed = source_counts(
            AssetTransferWorkloadGenerator(
                10, num_processes=10, seed=2, zipf_s=1.5
            )
        )
        assert skewed[0] > uniform[0]


class TestMultiContractGenerator:
    def test_interleaves_streams_deterministically(self):
        from repro.workloads.generators import (
            MultiContractWorkloadGenerator,
            standard_multi_contract,
        )

        _, g1 = standard_multi_contract(12, seed=9)
        _, g2 = standard_multi_contract(12, seed=9)
        items = g1.generate(200)
        assert items == g2.generate(200)
        contracts = {item.contract for item in items}
        assert contracts == {"erc20", "erc721", "asset"}
        per = MultiContractWorkloadGenerator.split(items)
        assert sum(len(sub) for sub in per.values()) == 200

    def test_split_preserves_per_contract_order_and_validity(self):
        from repro.workloads.generators import (
            MultiContractWorkloadGenerator,
            standard_multi_contract,
        )

        object_types, generator = standard_multi_contract(
            8, seed=4, zipf_s=1.0, hotspot_fraction=0.3
        )
        items = generator.generate(150)
        per_contract = MultiContractWorkloadGenerator.split(items)
        for name, sub in per_contract.items():
            object_type = object_types[name]
            state = object_type.initial_state()
            for item in sub:
                state, _ = object_type.apply(state, item.pid, item.operation)

    def test_rejects_bad_streams(self):
        from repro.workloads.generators import (
            ContractStream,
            MultiContractWorkloadGenerator,
            TokenWorkloadGenerator,
        )

        generator = TokenWorkloadGenerator(4, seed=0)
        with pytest.raises(InvalidArgumentError):
            MultiContractWorkloadGenerator([])
        with pytest.raises(InvalidArgumentError):
            MultiContractWorkloadGenerator(
                [
                    ContractStream("a", generator),
                    ContractStream("a", generator),
                ]
            )
        with pytest.raises(InvalidArgumentError):
            MultiContractWorkloadGenerator(
                [ContractStream("a", generator, weight=0)]
            )
