"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType
from repro.workloads.generators import (
    EXAMPLE1_BALANCES,
    EXAMPLE1_RESPONSES,
    OWNER_ONLY_MIX,
    SPENDER_HEAVY_MIX,
    TokenWorkloadGenerator,
    WorkloadMix,
    example1_trace,
    partition_by_process,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = TokenWorkloadGenerator(4, seed=1).generate(50)
        b = TokenWorkloadGenerator(4, seed=1).generate(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = TokenWorkloadGenerator(4, seed=1).generate(50)
        b = TokenWorkloadGenerator(4, seed=2).generate(50)
        assert a != b

    def test_items_valid_against_spec(self):
        token = ERC20TokenType(4, total_supply=30)
        items = TokenWorkloadGenerator(4, seed=3).generate(200)
        # Every generated item must be a domain-valid invocation.
        state = token.initial_state()
        for item in items:
            state, _ = token.apply(state, item.pid, item.operation)
        assert state.total_supply == 30

    def test_mix_respected(self):
        generator = TokenWorkloadGenerator(4, seed=4, mix=OWNER_ONLY_MIX)
        items = generator.generate(300)
        names = {item.operation.name for item in items}
        assert "transferFrom" not in names
        assert "approve" not in names

    def test_spender_heavy_mix_contains_spender_traffic(self):
        generator = TokenWorkloadGenerator(4, seed=4, mix=SPENDER_HEAVY_MIX)
        items = generator.generate(300)
        names = [item.operation.name for item in items]
        assert names.count("transferFrom") > 50

    def test_zipf_skew_concentrates_accounts(self):
        uniform = TokenWorkloadGenerator(10, seed=5)
        skewed = TokenWorkloadGenerator(10, seed=5, zipf_s=1.5)
        from collections import Counter

        uniform_counts = Counter(i.pid for i in uniform.generate(1000))
        skewed_counts = Counter(i.pid for i in skewed.generate(1000))
        assert skewed_counts[0] > 2 * uniform_counts[0]

    def test_stream_is_lazy(self):
        stream = TokenWorkloadGenerator(3, seed=0).stream()
        first = next(stream)
        assert 0 <= first.pid < 3

    def test_hotspot_skew_concentrates_accounts(self):
        from collections import Counter

        uniform = TokenWorkloadGenerator(20, seed=9)
        hot = TokenWorkloadGenerator(
            20, seed=9, hotspot_fraction=0.8, hotspot_accounts=2
        )
        uniform_counts = Counter(i.pid for i in uniform.generate(1000))
        hot_counts = Counter(i.pid for i in hot.generate(1000))
        hot_share = (hot_counts[0] + hot_counts[1]) / 1000
        uniform_share = (uniform_counts[0] + uniform_counts[1]) / 1000
        assert hot_share > 0.7
        assert uniform_share < 0.3

    def test_hotspot_is_deterministic_per_seed(self):
        make = lambda: TokenWorkloadGenerator(  # noqa: E731
            16, seed=42, hotspot_fraction=0.5, hotspot_accounts=3, zipf_s=1.1
        )
        assert make().generate(200) == make().generate(200)

    def test_hotspot_composes_with_zipf(self):
        """The overlay draws hot traffic; the Zipf base covers the rest."""
        from collections import Counter

        generator = TokenWorkloadGenerator(
            30, seed=3, zipf_s=1.5, hotspot_fraction=0.5, hotspot_accounts=1
        )
        counts = Counter(i.pid for i in generator.generate(2000))
        assert counts[0] > 1000  # hot overlay plus Zipf head
        assert len(counts) > 5  # tail still covered

    def test_hotspot_validation(self):
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_fraction=1.5)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_fraction=-0.1)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_accounts=0)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(4, hotspot_accounts=5)

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(0)
        with pytest.raises(InvalidArgumentError):
            TokenWorkloadGenerator(2, max_value=-1)
        with pytest.raises(InvalidArgumentError):
            WorkloadMix(transfer=-1).weights()
        with pytest.raises(InvalidArgumentError):
            WorkloadMix(
                transfer=0,
                transfer_from=0,
                approve=0,
                balance_of=0,
                allowance=0,
                total_supply=0,
            ).weights()


class TestExample1:
    def test_trace_matches_paper(self):
        token = ERC20TokenType(3, total_supply=10)
        state = token.initial_state()
        for item, expected_response, expected_balances in zip(
            example1_trace(), EXAMPLE1_RESPONSES, EXAMPLE1_BALANCES
        ):
            state, response = token.apply(state, item.pid, item.operation)
            assert response == expected_response
            assert state.balances == expected_balances
        assert state.allowance(1, 2) == 4


class TestPartition:
    def test_partition_preserves_order(self):
        items = TokenWorkloadGenerator(3, seed=6).generate(30)
        buckets = partition_by_process(items, 3)
        assert sum(len(bucket) for bucket in buckets) == 30
        for pid, bucket in enumerate(buckets):
            assert all(item.pid == pid for item in bucket)

    def test_out_of_range_pid_rejected(self):
        items = TokenWorkloadGenerator(5, seed=0).generate(10)
        with pytest.raises(InvalidArgumentError):
            partition_by_process(items, 2)
