"""The shared skew module (one home for Zipf/hot-spot draws) and its
consumers: every generator — engine- and cluster-side — must draw through
the same helpers so contention sweeps are comparable across them."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cluster import TokenCluster
from repro.cluster.workloads import owner_local_workload
from repro.errors import InvalidArgumentError
from repro.objects.erc20 import ERC20TokenType
from repro.workloads.skew import skewed_index, validate_skew, zipf_weights


class TestZipfWeights:
    def test_normalized_and_monotone(self):
        weights = zipf_weights(20, 1.2)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_s_zero_is_uniform(self):
        weights = zipf_weights(8, 0.0)
        assert all(abs(w - 1 / 8) < 1e-9 for w in weights)


class TestValidateSkew:
    def test_accepts_valid_knobs(self):
        validate_skew(0.0, 1, 4)
        validate_skew(1.0, 4, 4)

    @pytest.mark.parametrize(
        "fraction,count", [(-0.1, 1), (1.5, 1), (0.5, 0), (0.5, 9)]
    )
    def test_rejects_invalid_knobs(self, fraction, count):
        with pytest.raises(InvalidArgumentError):
            validate_skew(fraction, count, 8)


class TestSkewedIndex:
    def test_hotspot_concentrates_draws(self):
        rng = random.Random(7)
        draws = Counter(
            skewed_index(rng, 50, None, 0.8, 2) for _ in range(2000)
        )
        hot_share = (draws[0] + draws[1]) / 2000
        assert hot_share > 0.7

    def test_deterministic_per_seed(self):
        first = [
            skewed_index(random.Random(3), 30, zipf_weights(30, 1.1), 0.3, 2)
            for _ in range(1)
        ]
        second = [
            skewed_index(random.Random(3), 30, zipf_weights(30, 1.1), 0.3, 2)
            for _ in range(1)
        ]
        assert first == second

    def test_generators_reexport_the_shared_helpers(self):
        """The historical import path keeps working (one module, one
        implementation — the dedup contract)."""
        from repro.workloads import generators

        assert generators.skewed_index is skewed_index
        assert generators.zipf_weights is zipf_weights
        assert generators.validate_skew is validate_skew


class TestOwnerLocalSkew:
    def test_node_hotspot_concentrates_load(self):
        cluster = TokenCluster(
            ERC20TokenType(32, total_supply=3200), num_nodes=4, window=16
        )
        skewed = owner_local_workload(
            cluster.shard_map,
            32,
            400,
            seed=5,
            hotspot_fraction=0.9,
            hotspot_nodes=1,
        )
        owners = Counter(
            cluster.shard_map.owner_of(item.pid) for item in skewed
        )
        assert owners.most_common(1)[0][1] > 300

    def test_skewed_traffic_is_still_owner_local(self):
        token = ERC20TokenType(32, total_supply=3200)
        cluster = TokenCluster(token, num_nodes=4, window=16, seed=9)
        items = owner_local_workload(
            cluster.shard_map,
            32,
            300,
            seed=9,
            zipf_s=1.3,
            hotspot_fraction=0.5,
            hotspot_nodes=2,
        )
        _, _, stats = cluster.run_workload(items)
        assert stats.escalation_messages == 0
        assert stats.lease_migrations == 0

    def test_unskewed_draws_match_the_historical_stream(self):
        """Default knobs reproduce the pre-dedup draw sequence (the bench
        baselines must not shift)."""
        cluster = TokenCluster(
            ERC20TokenType(16, total_supply=1600), num_nodes=2, window=16
        )
        items = owner_local_workload(cluster.shard_map, 16, 50, seed=3)
        again = owner_local_workload(cluster.shard_map, 16, 50, seed=3)
        assert items == again
